//! Versioned, checksummed binary snapshots of lattice fields.
//!
//! A snapshot is the body of one field — ghosts are deliberately excluded,
//! they are rebuilt by the first exchange after restore — serialized
//! bit-exactly: every real is stored by its IEEE bit pattern
//! (little-endian), so `decode(encode(f)) == f` down to the last bit,
//! including negative zeros and NaN payloads. Half-precision fields store
//! their native representation (per-site `f32` norm + 16-bit mantissas),
//! so a restored [`HalfField`] is storage-identical, not merely
//! value-close.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "LQFS" | version u8 | precision u8 | parity u8 | pad u8
//! reals_per_site u32 | dims 4×u32 | origin 4×u32 | num_sites u64
//! payload (raw bit patterns)
//! crc64(everything above)
//! ```
//!
//! The geometry in the header is what makes restore *safe*: a snapshot
//! taken on one rank of an 8⁴ run cannot be silently restored into a
//! different subvolume, parity, or precision — that is an [`Error::Shape`].
//! Damage (bad magic, checksum mismatch, truncation) is [`Error::Corrupt`];
//! neither ever panics.

use crate::field::LatticeField;
use crate::half::HalfField;
use crate::site::SiteObject;
use lqcd_util::checkpoint::ByteReader;
use lqcd_util::checksum::crc64;
use lqcd_util::{Error, Fixed16, Real, Result};

/// Snapshot magic: "LQ Field Snapshot".
pub const FIELD_MAGIC: &[u8; 4] = b"LQFS";
/// Snapshot format version.
pub const FIELD_VERSION: u8 = 1;

/// Precision byte stored in a snapshot header.
pub const TAG_F64: u8 = 8;
/// Precision byte for single precision.
pub const TAG_F32: u8 = 4;
/// Precision byte for 16-bit fixed-point storage.
pub const TAG_HALF: u8 = 2;

/// A [`Real`] that knows its exact on-disk representation.
pub trait SnapshotReal: Real {
    /// Precision byte written to the header.
    const TAG: u8;
    /// Append the exact bit pattern, little-endian.
    fn put_le(self, out: &mut Vec<u8>);
    /// Read one value back from a reader.
    fn get_le(r: &mut ByteReader<'_>) -> Result<Self>;
}

impl SnapshotReal for f64 {
    const TAG: u8 = TAG_F64;
    fn put_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn get_le(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(f64::from_bits(u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"))))
    }
}

impl SnapshotReal for f32 {
    const TAG: u8 = TAG_F32;
    fn put_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn get_le(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(f32::from_bits(u32::from_le_bytes(r.take(4)?.try_into().expect("4 bytes"))))
    }
}

struct Header {
    precision: u8,
    parity: u8,
    reals_per_site: u32,
    dims: [u32; 4],
    origin: [u32; 4],
    num_sites: u64,
}

fn put_header(out: &mut Vec<u8>, h: &Header) {
    out.extend_from_slice(FIELD_MAGIC);
    out.push(FIELD_VERSION);
    out.push(h.precision);
    out.push(h.parity);
    out.push(0); // pad for alignment of what follows
    out.extend_from_slice(&h.reals_per_site.to_le_bytes());
    for d in h.dims {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for o in h.origin {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out.extend_from_slice(&h.num_sites.to_le_bytes());
}

/// Split off and verify the CRC trailer, returning a reader positioned
/// just past the magic/version, plus the decoded header.
fn open_snapshot<'a>(bytes: &'a [u8], what: &'a str) -> Result<(ByteReader<'a>, Header)> {
    let corrupt = |detail: String| Error::Corrupt { what: what.to_string(), detail };
    if bytes.len() < 8 {
        return Err(corrupt(format!("truncated: {} bytes", bytes.len())));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte split"));
    if crc64(body) != stored {
        return Err(corrupt("snapshot crc mismatch".into()));
    }
    let mut r = ByteReader::new(body, what);
    if r.take(4)? != FIELD_MAGIC {
        return Err(corrupt("bad field-snapshot magic".into()));
    }
    let version = r.take(1)?[0];
    if version != FIELD_VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let precision = r.take(1)?[0];
    let parity = r.take(1)?[0];
    let _pad = r.take(1)?;
    let reals_per_site = r.take_u32()?;
    let mut dims = [0u32; 4];
    for d in &mut dims {
        *d = r.take_u32()?;
    }
    let mut origin = [0u32; 4];
    for o in &mut origin {
        *o = r.take_u32()?;
    }
    let num_sites = r.take_u64()?;
    Ok((r, Header { precision, parity, reals_per_site, dims, origin, num_sites }))
}

fn field_header<R: SnapshotReal, S: SiteObject<R>>(f: &LatticeField<R, S>) -> Header {
    let sub = f.sublattice();
    let mut dims = [0u32; 4];
    let mut origin = [0u32; 4];
    for mu in 0..4 {
        dims[mu] = sub.dims.extent(mu) as u32;
        origin[mu] = sub.origin[mu] as u32;
    }
    Header {
        precision: R::TAG,
        parity: f.parity().index() as u8,
        reals_per_site: S::REALS as u32,
        dims,
        origin,
        num_sites: f.num_sites() as u64,
    }
}

/// Serialize a field body bit-exactly.
pub fn encode_field<R: SnapshotReal, S: SiteObject<R>>(f: &LatticeField<R, S>) -> Vec<u8> {
    let body = f.body();
    let mut out = Vec::with_capacity(48 + std::mem::size_of_val(body) + 8);
    put_header(&mut out, &field_header(f));
    for &x in body {
        x.put_le(&mut out);
    }
    out.extend_from_slice(&crc64(&out).to_le_bytes());
    out
}

/// Restore a snapshot into an existing field of identical geometry and
/// precision (ghosts untouched — refresh them with the next exchange).
pub fn decode_field_into<R: SnapshotReal, S: SiteObject<R>>(
    bytes: &[u8],
    dst: &mut LatticeField<R, S>,
    what: &str,
) -> Result<()> {
    let (mut r, h) = open_snapshot(bytes, what)?;
    check_geometry(&h, &field_header(dst), what)?;
    // Decode into a scratch buffer first so a truncated payload cannot
    // leave `dst` half-overwritten.
    let mut scratch = Vec::with_capacity(dst.body().len());
    for _ in 0..dst.body().len() {
        scratch.push(R::get_le(&mut r)?);
    }
    expect_empty(&r, what)?;
    dst.body_mut().copy_from_slice(&scratch);
    Ok(())
}

/// Serialize a half-precision field in its native storage representation
/// (norms + mantissas), bit-exactly.
pub fn encode_half<S: SiteObject<f32>>(h: &HalfField<S>) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + h.num_sites() * (4 + 2 * S::REALS) + 8);
    put_header(
        &mut out,
        &Header {
            precision: TAG_HALF,
            parity: 0,
            reals_per_site: S::REALS as u32,
            // HalfField is body-only storage with no geometry of its own.
            dims: [0; 4],
            origin: [0; 4],
            num_sites: h.num_sites() as u64,
        },
    );
    for &n in h.norms() {
        n.put_le(&mut out);
    }
    for &m in h.mantissas() {
        out.extend_from_slice(&m.0.to_le_bytes());
    }
    out.extend_from_slice(&crc64(&out).to_le_bytes());
    out
}

/// Restore a half-precision field from its snapshot, storage-identical.
pub fn decode_half<S: SiteObject<f32>>(bytes: &[u8], what: &str) -> Result<HalfField<S>> {
    let (mut r, h) = open_snapshot(bytes, what)?;
    if h.precision != TAG_HALF {
        return Err(Error::Shape(format!(
            "{what}: snapshot precision tag {} where half ({TAG_HALF}) was expected",
            h.precision
        )));
    }
    if h.reals_per_site != S::REALS as u32 {
        return Err(Error::Shape(format!(
            "{what}: snapshot has {} reals/site, destination site type has {}",
            h.reals_per_site,
            S::REALS
        )));
    }
    let sites = h.num_sites as usize;
    let mut norms = Vec::with_capacity(sites);
    for _ in 0..sites {
        norms.push(f32::get_le(&mut r)?);
    }
    let mut mantissas = Vec::with_capacity(sites * S::REALS);
    for _ in 0..sites * S::REALS {
        mantissas.push(Fixed16(i16::from_le_bytes(r.take(2)?.try_into().expect("2 bytes"))));
    }
    expect_empty(&r, what)?;
    HalfField::from_parts(mantissas, norms)
}

fn check_geometry(snap: &Header, dst: &Header, what: &str) -> Result<()> {
    let shape = |detail: String| Error::Shape(format!("{what}: {detail}"));
    if snap.precision != dst.precision {
        return Err(shape(format!(
            "snapshot precision tag {} does not match destination tag {}",
            snap.precision, dst.precision
        )));
    }
    if snap.reals_per_site != dst.reals_per_site {
        return Err(shape(format!(
            "snapshot has {} reals/site, destination {}",
            snap.reals_per_site, dst.reals_per_site
        )));
    }
    if snap.parity != dst.parity {
        return Err(shape(format!(
            "snapshot parity {} does not match destination parity {}",
            snap.parity, dst.parity
        )));
    }
    if snap.dims != dst.dims || snap.origin != dst.origin {
        return Err(shape(format!(
            "snapshot subvolume {:?}@{:?} does not match destination {:?}@{:?}",
            snap.dims, snap.origin, dst.dims, dst.origin
        )));
    }
    if snap.num_sites != dst.num_sites {
        return Err(shape(format!(
            "snapshot has {} sites, destination {}",
            snap.num_sites, dst.num_sites
        )));
    }
    Ok(())
}

fn expect_empty(r: &ByteReader<'_>, what: &str) -> Result<()> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(Error::Corrupt {
            what: what.to_string(),
            detail: format!("{} trailing bytes after payload", r.remaining()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice};
    use lqcd_su3::WilsonSpinor;
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    fn rand_field<R: SnapshotReal>(seed: u64) -> LatticeField<R, WilsonSpinor<R>>
    where
        WilsonSpinor<R>: SiteObject<R>,
    {
        let sub = Arc::new(SubLattice::single(Dims([4, 4, 4, 4])).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let mut f = LatticeField::zeros(sub, &faces, Parity::Even, 0);
        let mut rng = SeedTree::new(seed).rng();
        f.fill(|_| WilsonSpinor::random(&mut rng));
        f
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        let f = rand_field::<f64>(11);
        let bytes = encode_field(&f);
        let mut back = LatticeField::zeros_like(&f);
        decode_field_into(&bytes, &mut back, "test").unwrap();
        let (a, b) = (f.body(), back.body());
        assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn f32_roundtrip_is_bit_exact() {
        let f = rand_field::<f32>(12);
        let bytes = encode_field(&f);
        let mut back = LatticeField::zeros_like(&f);
        decode_field_into(&bytes, &mut back, "test").unwrap();
        let (a, b) = (f.body(), back.body());
        assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn special_values_survive() {
        let mut f = rand_field::<f64>(13);
        f.body_mut()[0] = -0.0;
        f.body_mut()[1] = f64::MIN_POSITIVE / 2.0; // subnormal
        let bytes = encode_field(&f);
        let mut back = LatticeField::zeros_like(&f);
        decode_field_into(&bytes, &mut back, "test").unwrap();
        assert_eq!(back.body()[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.body()[1], f64::MIN_POSITIVE / 2.0);
    }

    #[test]
    fn half_roundtrip_is_storage_identical() {
        let f = rand_field::<f32>(14);
        let h = HalfField::encode(&f);
        let bytes = encode_half(&h);
        let back: HalfField<WilsonSpinor<f32>> = decode_half(&bytes, "test").unwrap();
        assert_eq!(back.norms(), h.norms());
        assert_eq!(back.mantissas(), h.mantissas());
    }

    #[test]
    fn precision_mismatch_is_a_shape_error() {
        let f = rand_field::<f64>(15);
        let bytes = encode_field(&f);
        let mut wrong = rand_field::<f32>(15);
        assert!(matches!(decode_field_into(&bytes, &mut wrong, "test"), Err(Error::Shape(_))));
    }

    #[test]
    fn flipped_byte_is_corrupt_never_a_panic() {
        let f = rand_field::<f64>(16);
        let bytes = encode_field(&f);
        for pos in [0usize, 5, 50, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x08;
            let mut dst = LatticeField::zeros_like(&f);
            assert!(
                matches!(decode_field_into(&bad, &mut dst, "test"), Err(Error::Corrupt { .. })),
                "flip at {pos} accepted"
            );
        }
    }

    #[test]
    fn truncation_is_corrupt_and_leaves_destination_untouched() {
        let f = rand_field::<f64>(17);
        let bytes = encode_field(&f);
        let mut dst = LatticeField::zeros_like(&f);
        for len in [0, 7, 48, bytes.len() - 9, bytes.len() - 1] {
            assert!(matches!(
                decode_field_into(&bytes[..len], &mut dst, "test"),
                Err(Error::Corrupt { .. })
            ));
        }
        assert!(dst.body().iter().all(|&x| x == 0.0), "failed decode wrote into destination");
    }
}

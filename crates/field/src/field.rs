//! The lattice field container.

use crate::layout::FieldLayout;
use crate::site::SiteObject;
use lqcd_lattice::{FaceGeometry, Parity, SubLattice, NDIM};
use lqcd_util::{Error, Real, Result};
use std::marker::PhantomData;
use std::sync::Arc;

/// One parity of a lattice field in a single contiguous allocation
/// (body + pad + ghost zones; see [`FieldLayout`]).
///
/// `R` is the storage precision and `S` the typed per-site object
/// (spinor / color vector / link matrix / clover term).
#[derive(Clone, Debug)]
pub struct LatticeField<R: Real, S: SiteObject<R>> {
    data: Vec<R>,
    layout: Arc<FieldLayout>,
    sub: Arc<SubLattice>,
    parity: Parity,
    _site: PhantomData<S>,
}

impl<R: Real, S: SiteObject<R>> LatticeField<R, S> {
    /// Allocate a zero field for one parity of `sub`.
    pub fn zeros(sub: Arc<SubLattice>, faces: &FaceGeometry, parity: Parity, pad: usize) -> Self {
        let layout = Arc::new(FieldLayout::new(&sub, faces, pad));
        let data = vec![R::ZERO; layout.total_sites * S::REALS];
        Self { data, layout, sub, parity, _site: PhantomData }
    }

    /// Allocate with a shared, precomputed layout (cheap for Krylov spaces).
    pub fn zeros_like(other: &Self) -> Self {
        Self {
            data: vec![R::ZERO; other.data.len()],
            layout: other.layout.clone(),
            sub: other.sub.clone(),
            parity: other.parity,
            _site: PhantomData,
        }
    }

    /// Fill the body from a closure over the checkerboard index.
    pub fn fill(&mut self, mut f: impl FnMut(usize) -> S) {
        for idx in 0..self.layout.body_sites {
            let s = f(idx);
            s.write(&mut self.data[idx * S::REALS..(idx + 1) * S::REALS]);
        }
    }

    /// The subvolume this field lives on.
    pub fn sublattice(&self) -> &Arc<SubLattice> {
        &self.sub
    }

    /// The field's parity.
    pub fn parity(&self) -> Parity {
        self.parity
    }

    /// The memory layout.
    pub fn layout(&self) -> &FieldLayout {
        &self.layout
    }

    /// Number of body sites (`Vh`).
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.layout.body_sites
    }

    /// Read a body site.
    #[inline(always)]
    pub fn site(&self, idx: usize) -> S {
        debug_assert!(idx < self.layout.body_sites);
        S::read(&self.data[idx * S::REALS..(idx + 1) * S::REALS])
    }

    /// Write a body site.
    #[inline(always)]
    pub fn set_site(&mut self, idx: usize, s: S) {
        debug_assert!(idx < self.layout.body_sites);
        s.write(&mut self.data[idx * S::REALS..(idx + 1) * S::REALS]);
    }

    /// Read a ghost site by the `offset` produced by
    /// [`SubLattice::neighbor`](lqcd_lattice::SubLattice::neighbor).
    #[inline(always)]
    pub fn ghost(&self, mu: usize, forward: bool, offset: usize) -> S {
        let base = self.layout.ghost_base(mu, forward) + offset;
        S::read(&self.data[base * S::REALS..(base + 1) * S::REALS])
    }

    /// The flat body slice (BLAS kernels operate on this).
    #[inline]
    pub fn body(&self) -> &[R] {
        &self.data[..self.layout.body_sites * S::REALS]
    }

    /// Mutable flat body slice.
    #[inline]
    pub fn body_mut(&mut self) -> &mut [R] {
        &mut self.data[..self.layout.body_sites * S::REALS]
    }

    /// Mutable view of one ghost zone as flat reals (receive target).
    pub fn ghost_zone_mut(&mut self, mu: usize, forward: bool) -> &mut [R] {
        let base = self.layout.ghost_base(mu, forward) * S::REALS;
        let len = self.layout.ghost_sites[mu] * S::REALS;
        &mut self.data[base..base + len]
    }

    /// Read-only view of one ghost zone.
    pub fn ghost_zone(&self, mu: usize, forward: bool) -> &[R] {
        let base = self.layout.ghost_base(mu, forward) * S::REALS;
        let len = self.layout.ghost_sites[mu] * S::REALS;
        &self.data[base..base + len]
    }

    /// Split the allocation into a shared body view and exclusive ghost
    /// zones. This is the borrow shape of the overlapped dslash: the
    /// interior kernel reads the body (from any number of worker
    /// threads) while completed receives land in the ghost zones.
    pub fn body_and_ghosts_mut(&mut self) -> (BodyView<'_, R, S>, GhostZonesMut<'_, R>) {
        let body_len = self.layout.body_sites * S::REALS;
        let pad_len = self.layout.pad_sites * S::REALS;
        let (body, rest) = self.data.split_at_mut(body_len);
        let mut rest = &mut rest[pad_len..];
        let mut zones: [[Option<&mut [R]>; 2]; NDIM] = Default::default();
        // Zones follow body+pad in layout order: ascending mu, backward
        // then forward (see `FieldLayout::new`).
        for (mu, zone) in zones.iter_mut().enumerate() {
            let n = self.layout.ghost_sites[mu] * S::REALS;
            if n == 0 {
                continue;
            }
            let (bwd, r) = rest.split_at_mut(n);
            let (fwd, r) = r.split_at_mut(n);
            zone[0] = Some(bwd);
            zone[1] = Some(fwd);
            rest = r;
        }
        (BodyView { body, _site: PhantomData }, GhostZonesMut { zones })
    }

    /// Read-only body view (same site accessors as the split view).
    pub fn body_view(&self) -> BodyView<'_, R, S> {
        BodyView { body: self.body(), _site: PhantomData }
    }

    /// Gather body sites listed in `table` into a contiguous send buffer
    /// (the "gather kernel" of §6.1). `out` must hold
    /// `table.len() * S::REALS` reals.
    pub fn gather(&self, table: &[u32], out: &mut [R]) {
        assert_eq!(out.len(), table.len() * S::REALS, "gather buffer size");
        for (k, &idx) in table.iter().enumerate() {
            let src = &self.data[idx as usize * S::REALS..(idx as usize + 1) * S::REALS];
            out[k * S::REALS..(k + 1) * S::REALS].copy_from_slice(src);
        }
    }

    /// Zero every ghost zone (used by the Dirichlet/Schwarz operator,
    /// where boundary contributions are switched off — §8.1).
    pub fn zero_ghosts(&mut self) {
        let body_end = (self.layout.body_sites + self.layout.pad_sites) * S::REALS;
        for x in &mut self.data[body_end..] {
            *x = R::ZERO;
        }
    }

    /// Check two fields are compatible for BLAS (same layout & parity).
    pub fn check_compatible(&self, other: &Self) -> Result<()> {
        if self.layout != other.layout || self.parity != other.parity {
            return Err(Error::Shape(format!(
                "incompatible fields: {} vs {} body sites / parity {:?} vs {:?}",
                self.layout.body_sites, other.layout.body_sites, self.parity, other.parity
            )));
        }
        Ok(())
    }

    /// Restrict a *global* (single-rank, site-local) field to one rank's
    /// subvolume: body sites are copied by global coordinate; ghosts are
    /// left zero (appropriate for site-diagonal data like clover terms, or
    /// for fields whose ghosts are exchanged afterwards).
    pub fn restrict_from_global(
        global_field: &LatticeField<R, S>,
        sub: Arc<SubLattice>,
        faces: &FaceGeometry,
        parity: Parity,
        pad: usize,
    ) -> Self {
        let gsub = global_field.sublattice();
        assert!(
            gsub.partitioned.iter().all(|&x| !x),
            "restriction source must be a single-rank field"
        );
        let mut out = Self::zeros(sub.clone(), faces, parity, pad);
        for (idx, c) in sub.sites(parity) {
            let mut gc = c;
            for (d, o) in sub.origin.iter().enumerate() {
                gc[d] = c[d] + o;
            }
            debug_assert_eq!(gsub.parity(gc), parity);
            out.set_site(idx, global_field.site(gsub.cb_index(gc)));
        }
        out
    }

    /// Convert the *entire allocation* (body, pad, ghosts) elementwise to
    /// another precision. Used to clone operators (gauge/clover fields)
    /// across precisions with their ghost zones intact.
    pub fn cast_all<R2: Real>(&self) -> LatticeField<R2, S2Of<R2, S>>
    where
        S: CastSite<R, R2>,
    {
        LatticeField::<R2, S::Target> {
            data: self.data.iter().map(|x| R2::from_f64(x.to_f64())).collect(),
            layout: self.layout.clone(),
            sub: self.sub.clone(),
            parity: self.parity,
            _site: PhantomData,
        }
    }

    /// Convert this field's body into an existing field of another
    /// precision (shapes must match; ghosts of `dst` untouched).
    pub fn convert_body_into<R2: Real>(&self, dst: &mut LatticeField<R2, S2Of<R2, S>>)
    where
        S: CastSite<R, R2>,
    {
        assert_eq!(self.layout.body_sites, dst.layout.body_sites, "site count mismatch");
        let n = self.layout.body_sites * S::REALS;
        for (d, s) in dst.data[..n].iter_mut().zip(&self.data[..n]) {
            *d = R2::from_f64(s.to_f64());
        }
    }

    /// Convert the body to another precision (ghosts are zeroed; they are
    /// refreshed by the next exchange).
    pub fn cast_body<R2: Real>(&self) -> LatticeField<R2, S2Of<R2, S>>
    where
        S: CastSite<R, R2>,
    {
        let mut out = LatticeField::<R2, S::Target> {
            data: vec![R2::ZERO; self.data.len()],
            layout: self.layout.clone(),
            sub: self.sub.clone(),
            parity: self.parity,
            _site: PhantomData,
        };
        for idx in 0..self.layout.body_sites {
            let s = self.site(idx);
            out.set_site(idx, s.cast_site());
        }
        out
    }
}

/// Shared view of a field's body sites, cheap to copy into worker
/// threads (`&[R]` is `Sync`). Produced by
/// [`LatticeField::body_and_ghosts_mut`] / [`LatticeField::body_view`].
#[derive(Clone, Copy)]
pub struct BodyView<'a, R: Real, S: SiteObject<R>> {
    body: &'a [R],
    _site: PhantomData<S>,
}

impl<'a, R: Real, S: SiteObject<R>> BodyView<'a, R, S> {
    /// Read a body site (same indexing as [`LatticeField::site`]).
    #[inline(always)]
    pub fn site(&self, idx: usize) -> S {
        S::read(&self.body[idx * S::REALS..(idx + 1) * S::REALS])
    }

    /// Number of body sites in the view.
    #[inline]
    pub fn num_sites(&self) -> usize {
        self.body.len() / S::REALS
    }
}

/// Exclusive access to every ghost zone of a field, independent of the
/// body. Receive targets for the completion half of a split exchange.
pub struct GhostZonesMut<'a, R: Real> {
    zones: [[Option<&'a mut [R]>; 2]; NDIM],
}

impl<R: Real> GhostZonesMut<'_, R> {
    /// Mutable flat view of one ghost zone.
    ///
    /// # Panics
    /// Panics if the dimension has no ghost zone, mirroring
    /// [`FieldLayout::ghost_base`].
    pub fn zone_mut(&mut self, mu: usize, forward: bool) -> &mut [R] {
        self.zones[mu][forward as usize]
            .as_deref_mut()
            .unwrap_or_else(|| panic!("no ghost zone for dimension {mu}"))
    }
}

/// Helper alias for the target site type of a precision cast.
pub type S2Of<R2, S> = <S as CastSiteAny<R2>>::Target;

/// Site-level precision conversion (implementation detail of
/// [`LatticeField::cast_body`]).
pub trait CastSiteAny<R2: Real> {
    /// The same site shape at the new precision.
    type Target: SiteObject<R2>;
}

/// Site-level precision conversion.
pub trait CastSite<R: Real, R2: Real>: SiteObject<R> + CastSiteAny<R2> {
    /// Convert through `f64`.
    fn cast_site(&self) -> Self::Target;
}

macro_rules! impl_cast_site {
    ($ty:ident) => {
        impl<R2: Real> CastSiteAny<R2> for lqcd_su3::$ty<f64> {
            type Target = lqcd_su3::$ty<R2>;
        }
        impl<R2: Real> CastSiteAny<R2> for lqcd_su3::$ty<f32> {
            type Target = lqcd_su3::$ty<R2>;
        }
        impl<R2: Real> CastSite<f64, R2> for lqcd_su3::$ty<f64> {
            fn cast_site(&self) -> lqcd_su3::$ty<R2> {
                self.cast()
            }
        }
        impl<R2: Real> CastSite<f32, R2> for lqcd_su3::$ty<f32> {
            fn cast_site(&self) -> lqcd_su3::$ty<R2> {
                self.cast()
            }
        }
    };
}

impl_cast_site!(ColorVector);
impl_cast_site!(WilsonSpinor);
impl_cast_site!(Su3);
impl_cast_site!(CloverSite);

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::{Dims, ProcessGrid};
    use lqcd_su3::WilsonSpinor;
    use lqcd_util::rng::SeedTree;

    fn make_field() -> LatticeField<f64, WilsonSpinor<f64>> {
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let sub = Arc::new(SubLattice::for_rank(&grid, 0));
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        LatticeField::zeros(sub, &faces, Parity::Even, 4)
    }

    #[test]
    fn site_roundtrip() {
        let mut f = make_field();
        let t = SeedTree::new(1);
        let mut rng = t.rng();
        let a = WilsonSpinor::random(&mut rng);
        let b = WilsonSpinor::random(&mut rng);
        f.set_site(0, a);
        f.set_site(f.num_sites() - 1, b);
        assert_eq!(f.site(0), a);
        assert_eq!(f.site(f.num_sites() - 1), b);
    }

    #[test]
    fn gather_reads_table_order() {
        let mut f = make_field();
        f.fill(|idx| {
            let mut s = WilsonSpinor::zero();
            s.s[0].c[0] = lqcd_util::Complex::from_re(idx as f64);
            s
        });
        let table = [5u32, 0, 9];
        let mut buf = vec![0.0f64; 3 * 24];
        f.gather(&table, &mut buf);
        assert_eq!(buf[0], 5.0);
        assert_eq!(buf[24], 0.0);
        assert_eq!(buf[48], 9.0);
    }

    #[test]
    fn ghost_zone_write_then_typed_read() {
        let mut f = make_field();
        let t = SeedTree::new(2);
        let s = WilsonSpinor::random(&mut t.rng());
        {
            let zone = f.ghost_zone_mut(3, true);
            s.write(&mut zone[..24]);
        }
        assert_eq!(f.ghost(3, true, 0), s);
        f.zero_ghosts();
        assert_eq!(f.ghost(3, true, 0), WilsonSpinor::zero());
    }

    #[test]
    fn body_excludes_pad_and_ghosts() {
        let f = make_field();
        assert_eq!(f.body().len(), f.num_sites() * 24);
        assert!(f.body().len() < f.data.len());
    }

    #[test]
    fn cast_body_roundtrip() {
        let mut f = make_field();
        let t = SeedTree::new(3);
        let mut rng = t.rng();
        f.fill(|_| WilsonSpinor::random(&mut rng));
        let f32_field: LatticeField<f32, WilsonSpinor<f32>> = f.cast_body();
        let back: LatticeField<f64, WilsonSpinor<f64>> = f32_field.cast_body();
        for idx in (0..f.num_sites()).step_by(7) {
            assert!(f.site(idx).sub(&back.site(idx)).norm_sqr() < 1e-10);
        }
    }

    #[test]
    fn split_borrow_matches_whole_field_accessors() {
        let mut f = make_field();
        f.fill(|idx| {
            let mut s = WilsonSpinor::zero();
            s.s[0].c[0] = lqcd_util::Complex::from_re(idx as f64);
            s
        });
        let t = SeedTree::new(4);
        let (g2, g3) = (WilsonSpinor::random(&mut t.rng()), WilsonSpinor::random(&mut t.rng()));
        let n = f.num_sites();
        {
            let (body, mut zones) = f.body_and_ghosts_mut();
            // The body is readable (e.g. from interior workers) while
            // ghost zones are written.
            assert_eq!(body.num_sites(), n);
            g2.write(&mut zones.zone_mut(2, false)[..24]);
            g3.write(&mut zones.zone_mut(3, true)[..24]);
            assert_eq!(body.site(5).s[0].c[0].re, 5.0);
        }
        assert_eq!(f.ghost(2, false, 0), g2);
        assert_eq!(f.ghost(3, true, 0), g3);
        assert_eq!(f.site(5).s[0].c[0].re, 5.0, "body untouched by zone writes");
    }

    #[test]
    #[should_panic(expected = "no ghost zone")]
    fn split_borrow_panics_for_unpartitioned_dim() {
        let mut f = make_field();
        let (_, mut zones) = f.body_and_ghosts_mut();
        let _ = zones.zone_mut(0, true);
    }

    #[test]
    fn incompatible_fields_detected() {
        let f = make_field();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let sub = Arc::new(SubLattice::for_rank(&grid, 0));
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let odd: LatticeField<f64, WilsonSpinor<f64>> =
            LatticeField::zeros(sub, &faces, Parity::Odd, 4);
        assert!(f.check_compatible(&odd).is_err());
        let other = LatticeField::zeros_like(&f);
        assert!(f.check_compatible(&other).is_ok());
    }
}

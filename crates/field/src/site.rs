//! The bridge between typed per-site objects and flat real storage.

use lqcd_su3::{CloverSite, ColorVector, Su3, WilsonSpinor};
use lqcd_util::{Complex, Real};

/// A per-site object with a fixed flat real-number encoding.
///
/// Implementations must write exactly [`SiteObject::REALS`] values and read
/// them back losslessly; round-trip identity is property-tested below.
pub trait SiteObject<R: Real>: Copy + Send + Sync {
    /// Number of reals per site.
    const REALS: usize;
    /// The all-zero object.
    fn zero_site() -> Self;
    /// Serialize into `out` (`out.len() == REALS`).
    fn write(&self, out: &mut [R]);
    /// Deserialize from `src` (`src.len() == REALS`).
    fn read(src: &[R]) -> Self;
}

impl<R: Real> SiteObject<R> for ColorVector<R> {
    const REALS: usize = 6;

    fn zero_site() -> Self {
        ColorVector::zero()
    }

    #[inline(always)]
    fn write(&self, out: &mut [R]) {
        for (k, e) in self.c.iter().enumerate() {
            out[2 * k] = e.re;
            out[2 * k + 1] = e.im;
        }
    }

    #[inline(always)]
    fn read(src: &[R]) -> Self {
        ColorVector::from_fn(|k| Complex::new(src[2 * k], src[2 * k + 1]))
    }
}

impl<R: Real> SiteObject<R> for WilsonSpinor<R> {
    const REALS: usize = 24;

    fn zero_site() -> Self {
        WilsonSpinor::zero()
    }

    #[inline(always)]
    fn write(&self, out: &mut [R]) {
        for (sp, v) in self.s.iter().enumerate() {
            v.write(&mut out[6 * sp..6 * (sp + 1)]);
        }
    }

    #[inline(always)]
    fn read(src: &[R]) -> Self {
        WilsonSpinor::from_fn(|sp| ColorVector::read(&src[6 * sp..6 * (sp + 1)]))
    }
}

impl<R: Real> SiteObject<R> for Su3<R> {
    const REALS: usize = 18;

    fn zero_site() -> Self {
        Su3::zero()
    }

    #[inline(always)]
    fn write(&self, out: &mut [R]) {
        out.copy_from_slice(&self.to_reals());
    }

    #[inline(always)]
    fn read(src: &[R]) -> Self {
        let mut buf = [R::ZERO; 18];
        buf.copy_from_slice(src);
        Su3::from_reals(&buf)
    }
}

impl<R: Real> SiteObject<R> for CloverSite<R> {
    const REALS: usize = 72;

    fn zero_site() -> Self {
        CloverSite::default()
    }

    #[inline(always)]
    fn write(&self, out: &mut [R]) {
        out.copy_from_slice(&self.to_reals());
    }

    #[inline(always)]
    fn read(src: &[R]) -> Self {
        let mut buf = [R::ZERO; 72];
        buf.copy_from_slice(src);
        CloverSite::from_reals(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_util::rng::SeedTree;

    fn roundtrip<R: Real, S: SiteObject<R> + PartialEq + std::fmt::Debug>(s: S) {
        let mut buf = vec![R::ZERO; S::REALS];
        s.write(&mut buf);
        assert_eq!(S::read(&buf), s);
    }

    #[test]
    fn all_site_objects_roundtrip() {
        let t = SeedTree::new(1);
        let mut rng = t.rng();
        roundtrip::<f64, _>(ColorVector::random(&mut rng));
        roundtrip::<f64, _>(WilsonSpinor::random(&mut rng));
        roundtrip::<f64, _>(Su3::random(&mut rng));
        roundtrip::<f64, _>(CloverSite::random_spd(&mut rng));
        roundtrip::<f32, _>(ColorVector::<f32>::random(&mut rng));
        roundtrip::<f32, _>(WilsonSpinor::<f32>::random(&mut rng));
    }

    #[test]
    fn real_counts_match_paper() {
        // Fig. 2: staggered spinor = 6 floats, Wilson spinor = 24 floats;
        // Fig. 3: gauge link = 18 floats; footnote 1: clover = 72 reals.
        assert_eq!(<ColorVector<f64> as SiteObject<f64>>::REALS, 6);
        assert_eq!(<WilsonSpinor<f64> as SiteObject<f64>>::REALS, 24);
        assert_eq!(<Su3<f64> as SiteObject<f64>>::REALS, 18);
        assert_eq!(<CloverSite<f64> as SiteObject<f64>>::REALS, 72);
    }
}

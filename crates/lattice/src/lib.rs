//! 4-D lattice geometry for multi-rank lattice QCD.
//!
//! Everything the Dirac operators and the communication layer need to agree
//! on lives here:
//!
//! * [`Dims`] — global/local lattice extents with lexicographic indexing
//!   (X fastest, T slowest, the paper's memory order);
//! * [`ProcessGrid`] / [`PartitionScheme`] — how ranks tile the lattice in
//!   1–4 dimensions (the paper's T, ZT, YZT, XYZT schemes) and neighbour
//!   rank arithmetic with periodic wrap;
//! * [`SubLattice`] — one rank's subvolume: even-odd (checkerboard) site
//!   indexing, local↔global coordinate maps, and neighbour resolution that
//!   classifies each stencil hop as interior or ghost;
//! * [`FaceGeometry`] — gather tables and ghost-slot indexing for the
//!   boundary faces, at arbitrary stencil depth (1 for Wilson, 3 for the
//!   improved-staggered Naik term).
//!
//! The invariant the whole workspace rests on: **the sender's gather order
//! and the receiver's ghost-slot arithmetic are derived from the same
//! functions here**, so a spinor gathered on one rank is read back at the
//! right offset on its neighbour by construction.

pub mod dims;
pub mod face;
pub mod grid;
pub mod local;

pub use dims::{Dims, NDIM};
pub use face::FaceGeometry;
pub use grid::{PartitionScheme, ProcessGrid};
pub use local::{Neighbor, Parity, SubLattice};

//! Process grids and the paper's partitioning schemes.

use crate::dims::{Dims, NDIM};
use lqcd_util::{Error, Result};
use serde::{Deserialize, Serialize};

/// Which lattice dimensions are split across ranks.
///
/// These are exactly the schemes whose scaling the paper compares in
/// Figs. 6 and 10 (`ZT`, `YZT`, `XYZT`) plus the legacy time-only split of
/// the earlier QUDA work (`T`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// Partition the time dimension only (the pre-paper QUDA strategy).
    T,
    /// Partition Z and T.
    ZT,
    /// Partition Y, Z and T.
    YZT,
    /// Partition all four dimensions.
    XYZT,
}

impl PartitionScheme {
    /// The dimensions this scheme may split, ordered slowest-memory first
    /// (T, then Z, then Y, then X) — extra ranks are assigned to slower
    /// dimensions first, matching the motivation in §6.1 (T longest &
    /// contiguous).
    pub fn dims(&self) -> &'static [usize] {
        match self {
            PartitionScheme::T => &[3],
            PartitionScheme::ZT => &[3, 2],
            PartitionScheme::YZT => &[3, 2, 1],
            PartitionScheme::XYZT => &[3, 2, 1, 0],
        }
    }

    /// Human-readable label as used in the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            PartitionScheme::T => "T",
            PartitionScheme::ZT => "ZT",
            PartitionScheme::YZT => "YZT",
            PartitionScheme::XYZT => "XYZT",
        }
    }

    /// All schemes, for sweep drivers.
    pub const ALL: [PartitionScheme; 4] =
        [PartitionScheme::T, PartitionScheme::ZT, PartitionScheme::YZT, PartitionScheme::XYZT];

    /// Choose a process grid for `ranks` ranks over a `global` lattice.
    ///
    /// Greedy: repeatedly give a factor of 2 (or the smallest prime factor
    /// left) to the allowed dimension with the largest current local
    /// extent, breaking ties toward slower dimensions. Errors if `ranks`
    /// cannot be factored into the allowed dimensions with even local
    /// extents remaining.
    pub fn grid(&self, global: Dims, ranks: usize) -> Result<ProcessGrid> {
        if ranks == 0 {
            return Err(Error::Geometry("rank count must be positive".into()));
        }
        let mut grid = [1usize; NDIM];
        let mut local = global.0;
        let mut remaining = ranks;
        while remaining > 1 {
            let p = smallest_prime_factor(remaining);
            // Pick allowed dim with the largest local extent divisible by p
            // that stays even (checkerboard requirement).
            let mut best: Option<usize> = None;
            for &mu in self.dims() {
                let l = local[mu];
                if l.is_multiple_of(p) && (l / p).is_multiple_of(2) {
                    match best {
                        None => best = Some(mu),
                        Some(b) => {
                            if local[mu] > local[b] {
                                best = Some(mu);
                            }
                        }
                    }
                }
            }
            let mu = best.ok_or_else(|| {
                Error::Geometry(format!(
                    "cannot place factor {p} of {ranks} ranks into {:?} of {global} under {}",
                    self.dims(),
                    self.label()
                ))
            })?;
            grid[mu] *= p;
            local[mu] /= p;
            remaining /= p;
        }
        ProcessGrid::new(Dims(grid), global)
    }
}

fn smallest_prime_factor(n: usize) -> usize {
    debug_assert!(n > 1);
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 1;
    }
    n
}

/// A Cartesian grid of ranks tiling the global lattice.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessGrid {
    /// Ranks along each dimension.
    pub shape: Dims,
    /// The global lattice being tiled.
    pub global: Dims,
    /// Local (per-rank) extents, `global / shape`.
    pub local: Dims,
}

impl ProcessGrid {
    /// Build and validate a grid: extents must divide evenly and local
    /// extents must be even (checkerboarding).
    pub fn new(shape: Dims, global: Dims) -> Result<Self> {
        let local = global.divide(&shape)?;
        if !local.all_even() {
            return Err(Error::Geometry(format!(
                "local volume {local} has odd extent; even-odd preconditioning requires even local extents"
            )));
        }
        Ok(Self { shape, global, local })
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.shape.volume()
    }

    /// True if dimension `mu` is split across more than one rank.
    #[inline]
    pub fn is_partitioned(&self, mu: usize) -> bool {
        self.shape.0[mu] > 1
    }

    /// Number of partitioned dimensions.
    pub fn num_partitioned(&self) -> usize {
        (0..NDIM).filter(|&mu| self.is_partitioned(mu)).count()
    }

    /// Grid coordinates of a rank (X fastest, same convention as sites).
    #[inline]
    pub fn rank_coords(&self, rank: usize) -> [usize; NDIM] {
        self.shape.coords(rank)
    }

    /// Rank id at grid coordinates.
    #[inline]
    pub fn rank_at(&self, c: [usize; NDIM]) -> usize {
        self.shape.index(c)
    }

    /// The neighbouring rank one step in direction `mu` (`forward = true`
    /// for +µ), with periodic wrap.
    #[inline]
    pub fn neighbor_rank(&self, rank: usize, mu: usize, forward: bool) -> usize {
        let c = self.rank_coords(rank);
        let step = if forward { 1 } else { -1 };
        self.rank_at(self.shape.displace(c, mu, step))
    }

    /// Origin (global coordinate of local site `[0,0,0,0]`) of a rank.
    pub fn origin(&self, rank: usize) -> [usize; NDIM] {
        let rc = self.rank_coords(rank);
        let mut o = [0; NDIM];
        for mu in 0..NDIM {
            o[mu] = rc[mu] * self.local.0[mu];
        }
        o
    }

    /// Which rank owns a global coordinate.
    pub fn owner(&self, c: [usize; NDIM]) -> usize {
        let mut rc = [0; NDIM];
        for mu in 0..NDIM {
            rc[mu] = c[mu] / self.local.0[mu];
        }
        self.rank_at(rc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scheme_dims_grow() {
        assert_eq!(PartitionScheme::T.dims(), &[3]);
        assert_eq!(PartitionScheme::XYZT.dims().len(), 4);
    }

    #[test]
    fn t_scheme_splits_time_only() {
        let g = PartitionScheme::T.grid(Dims::symm(8, 32), 4).unwrap();
        assert_eq!(g.shape, Dims([1, 1, 1, 4]));
        assert_eq!(g.local, Dims([8, 8, 8, 8]));
    }

    #[test]
    fn xyzt_scheme_balances() {
        // The paper's Wilson volume on 256 GPUs.
        let g = PartitionScheme::XYZT.grid(Dims::symm(32, 256), 256).unwrap();
        assert_eq!(g.num_ranks(), 256);
        // All local extents even and ≥ 2.
        assert!(g.local.all_even());
        assert_eq!(g.local.volume() * 256, Dims::symm(32, 256).volume());
    }

    #[test]
    fn zt_cannot_absorb_too_many_ranks() {
        // 8^3x8 with 256 ranks in ZT would need local extents < 1.
        assert!(PartitionScheme::ZT.grid(Dims::symm(8, 8), 256).is_err());
    }

    #[test]
    fn rank_coords_roundtrip_and_neighbors() {
        let g = ProcessGrid::new(Dims([1, 2, 2, 4]), Dims([4, 8, 8, 16])).unwrap();
        for r in 0..g.num_ranks() {
            assert_eq!(g.rank_at(g.rank_coords(r)), r);
            for mu in 0..NDIM {
                let fwd = g.neighbor_rank(r, mu, true);
                let back = g.neighbor_rank(fwd, mu, false);
                assert_eq!(back, r, "neighbor inverse failed at rank {r} dim {mu}");
            }
        }
    }

    #[test]
    fn owner_matches_origin() {
        let g = ProcessGrid::new(Dims([2, 1, 2, 2]), Dims([8, 4, 8, 8])).unwrap();
        for r in 0..g.num_ranks() {
            let o = g.origin(r);
            assert_eq!(g.owner(o), r);
            // Last site of the block also owned by r.
            let mut last = o;
            for mu in 0..NDIM {
                last[mu] += g.local.0[mu] - 1;
            }
            assert_eq!(g.owner(last), r);
        }
    }

    #[test]
    fn odd_local_extent_rejected() {
        // 6/2 = 3 (odd) in X → reject.
        assert!(ProcessGrid::new(Dims([2, 1, 1, 1]), Dims([6, 4, 4, 4])).is_err());
    }

    proptest! {
        #[test]
        fn prop_grid_covers_lattice(ranks in 1usize..64) {
            // Whenever a grid is constructible, rank subvolumes tile the lattice.
            let global = Dims::symm(16, 32);
            if let Ok(g) = PartitionScheme::XYZT.grid(global, ranks) {
                prop_assert_eq!(g.num_ranks() * g.local.volume(), global.volume());
                // owner(origin(r)) == r for all ranks
                for r in 0..g.num_ranks() {
                    prop_assert_eq!(g.owner(g.origin(r)), r);
                }
            }
        }
    }
}

//! Lattice extents and lexicographic indexing.

use lqcd_util::{Error, Result};
use serde::{Deserialize, Serialize};

/// Number of spacetime dimensions.
pub const NDIM: usize = 4;

/// Extents of a 4-D lattice, ordered `[X, Y, Z, T]`.
///
/// Memory order follows the paper (§6.2): X is the fastest-varying index
/// and T the slowest.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims(pub [usize; NDIM]);

impl Dims {
    /// Construct, validating positivity.
    pub fn new(dims: [usize; NDIM]) -> Result<Self> {
        if dims.contains(&0) {
            return Err(Error::Geometry(format!("zero extent in {dims:?}")));
        }
        Ok(Dims(dims))
    }

    /// The common `L³ × T` shorthand (e.g. `Dims::symm(32, 256)` for the
    /// paper's Wilson-clover volume).
    pub fn symm(l: usize, t: usize) -> Self {
        Dims([l, l, l, t])
    }

    /// Total number of sites.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent along dimension `mu`.
    #[inline(always)]
    pub fn extent(&self, mu: usize) -> usize {
        self.0[mu]
    }

    /// Lexicographic index of a coordinate (X fastest).
    #[inline(always)]
    pub fn index(&self, c: [usize; NDIM]) -> usize {
        debug_assert!(c.iter().zip(&self.0).all(|(&x, &d)| x < d), "{c:?} out of {:?}", self.0);
        ((c[3] * self.0[2] + c[2]) * self.0[1] + c[1]) * self.0[0] + c[0]
    }

    /// Coordinate of a lexicographic index (inverse of [`Dims::index`]).
    #[inline(always)]
    pub fn coords(&self, mut idx: usize) -> [usize; NDIM] {
        debug_assert!(idx < self.volume());
        let mut c = [0; NDIM];
        for mu in 0..NDIM {
            c[mu] = idx % self.0[mu];
            idx /= self.0[mu];
        }
        c
    }

    /// Parity (checkerboard color) of a coordinate: `(x+y+z+t) mod 2`.
    #[inline(always)]
    pub fn parity(c: [usize; NDIM]) -> usize {
        (c[0] + c[1] + c[2] + c[3]) % 2
    }

    /// Displace a coordinate by `steps` in direction `mu` with periodic
    /// wrap (used for *global* coordinates; local neighbours go through
    /// [`crate::SubLattice`] instead so they can fall into ghost zones).
    #[inline]
    pub fn displace(&self, mut c: [usize; NDIM], mu: usize, steps: isize) -> [usize; NDIM] {
        let l = self.0[mu] as isize;
        let x = (c[mu] as isize + steps).rem_euclid(l);
        c[mu] = x as usize;
        c
    }

    /// True if every extent is even (required for checkerboarding).
    pub fn all_even(&self) -> bool {
        self.0.iter().all(|d| d % 2 == 0)
    }

    /// Componentwise division for process-grid partitioning; errors if any
    /// dimension is not exactly divisible.
    pub fn divide(&self, by: &Dims) -> Result<Dims> {
        let mut out = [0; NDIM];
        for mu in 0..NDIM {
            if !self.0[mu].is_multiple_of(by.0[mu]) {
                return Err(Error::Geometry(format!(
                    "extent {} of dim {mu} not divisible by grid {}",
                    self.0[mu], by.0[mu]
                )));
            }
            out[mu] = self.0[mu] / by.0[mu];
        }
        Ok(Dims(out))
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn volume_and_accessors() {
        let d = Dims::symm(4, 8);
        assert_eq!(d.volume(), 4 * 4 * 4 * 8);
        assert_eq!(d.extent(3), 8);
        assert_eq!(d.to_string(), "4x4x4x8");
    }

    #[test]
    fn zero_extent_rejected() {
        assert!(Dims::new([0, 2, 2, 2]).is_err());
        assert!(Dims::new([2, 2, 2, 2]).is_ok());
    }

    #[test]
    fn index_is_x_fastest() {
        let d = Dims([4, 6, 8, 10]);
        assert_eq!(d.index([0, 0, 0, 0]), 0);
        assert_eq!(d.index([1, 0, 0, 0]), 1);
        assert_eq!(d.index([0, 1, 0, 0]), 4);
        assert_eq!(d.index([0, 0, 1, 0]), 24);
        assert_eq!(d.index([0, 0, 0, 1]), 192);
    }

    #[test]
    fn displace_wraps() {
        let d = Dims([4, 4, 4, 4]);
        assert_eq!(d.displace([0, 0, 0, 0], 0, -1), [3, 0, 0, 0]);
        assert_eq!(d.displace([3, 0, 0, 0], 0, 1), [0, 0, 0, 0]);
        assert_eq!(d.displace([1, 0, 0, 0], 0, -3), [2, 0, 0, 0]);
    }

    #[test]
    fn divide_checks_divisibility() {
        let d = Dims([8, 8, 8, 16]);
        assert_eq!(d.divide(&Dims([1, 1, 2, 4])).unwrap(), Dims([8, 8, 4, 4]));
        assert!(d.divide(&Dims([3, 1, 1, 1])).is_err());
    }

    proptest! {
        #[test]
        fn prop_index_coords_bijection(
            dx in 1usize..6, dy in 1usize..6, dz in 1usize..6, dt in 1usize..6,
            pick in 0usize..1000
        ) {
            let d = Dims([dx, dy, dz, dt]);
            let idx = pick % d.volume();
            let c = d.coords(idx);
            prop_assert_eq!(d.index(c), idx);
            for mu in 0..NDIM {
                prop_assert!(c[mu] < d.0[mu]);
            }
        }

        #[test]
        fn prop_displace_roundtrip(
            dx in 2usize..6, dt in 2usize..8, mu in 0usize..4, steps in -5isize..5,
            pick in 0usize..10_000
        ) {
            let d = Dims([dx, dx, dx, dt]);
            let c = d.coords(pick % d.volume());
            let there = d.displace(c, mu, steps);
            let back = d.displace(there, mu, -steps);
            prop_assert_eq!(back, c);
        }
    }
}

//! One rank's subvolume: even-odd indexing and stencil neighbour
//! resolution.

use crate::dims::{Dims, NDIM};
use crate::grid::ProcessGrid;
use lqcd_util::{Error, Result};

/// Checkerboard color of a site.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Parity {
    /// Sites with even coordinate sum.
    Even,
    /// Sites with odd coordinate sum.
    Odd,
}

impl Parity {
    /// 0 for even, 1 for odd.
    #[inline(always)]
    pub fn index(self) -> usize {
        match self {
            Parity::Even => 0,
            Parity::Odd => 1,
        }
    }

    /// The opposite parity.
    #[inline(always)]
    pub fn other(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }

    /// From a coordinate-sum value.
    #[inline(always)]
    pub fn of_sum(s: usize) -> Parity {
        if s.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// Both parities, for iteration.
    pub const BOTH: [Parity; 2] = [Parity::Even, Parity::Odd];
}

/// Where a stencil hop landed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Neighbor {
    /// Inside the local body, at checkerboard index `idx` (the parity is
    /// implied by the hop distance and the source parity).
    Interior {
        /// Checkerboard index within the neighbour's parity.
        idx: usize,
    },
    /// In a ghost zone: direction `mu`, `forward` for the +µ neighbour's
    /// data, `offset` already combines layer and face slot (an index into
    /// the ghost buffer of the relevant parity).
    Ghost {
        /// Partitioned dimension crossed.
        mu: usize,
        /// True if the +µ boundary was crossed.
        forward: bool,
        /// `layer * face_vol_cb + slot` into the ghost buffer.
        offset: usize,
    },
}

/// The subvolume owned by one rank.
///
/// Carries everything neighbour resolution needs: local extents, which
/// dimensions are partitioned (hops across those go to ghost zones; hops
/// across *unpartitioned* boundaries wrap periodically on-rank), and the
/// rank's origin so global parity can be formed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubLattice {
    /// Local extents.
    pub dims: Dims,
    /// Global coordinate of local site `[0,0,0,0]`.
    pub origin: [usize; NDIM],
    /// True for dimensions split across ranks.
    pub partitioned: [bool; NDIM],
}

impl SubLattice {
    /// Subvolume of `rank` within a process grid.
    pub fn for_rank(grid: &ProcessGrid, rank: usize) -> Self {
        let mut partitioned = [false; NDIM];
        for (mu, p) in partitioned.iter_mut().enumerate() {
            *p = grid.is_partitioned(mu);
        }
        SubLattice { dims: grid.local, origin: grid.origin(rank), partitioned }
    }

    /// A single-rank (unpartitioned) lattice covering `dims`.
    pub fn single(dims: Dims) -> Result<Self> {
        if !dims.all_even() {
            return Err(Error::Geometry(format!("{dims} has odd extent")));
        }
        Ok(SubLattice { dims, origin: [0; NDIM], partitioned: [false; NDIM] })
    }

    /// Sites per parity (`Vh` in the paper's Fig. 2).
    #[inline]
    pub fn volume_cb(&self) -> usize {
        self.dims.volume() / 2
    }

    /// Checkerboard face volume for dimension `mu` (sites of one parity on
    /// one `x_µ = const` slice).
    #[inline]
    pub fn face_vol_cb(&self, mu: usize) -> usize {
        self.dims.volume() / self.dims.extent(mu) / 2
    }

    /// Parity of a local coordinate (origins have even coordinate sums for
    /// even local extents, so local parity equals global parity; we add the
    /// origin anyway to keep the definition global).
    #[inline(always)]
    pub fn parity(&self, c: [usize; NDIM]) -> Parity {
        let s: usize = (0..NDIM).map(|mu| c[mu] + self.origin[mu]).sum();
        Parity::of_sum(s)
    }

    /// Checkerboard index of a local coordinate within its parity.
    #[inline(always)]
    pub fn cb_index(&self, c: [usize; NDIM]) -> usize {
        self.dims.index(c) / 2
    }

    /// Local coordinate of checkerboard index `idx` at parity `p`
    /// (inverse of [`SubLattice::cb_index`] restricted to parity `p`).
    #[inline]
    pub fn cb_coords(&self, p: Parity, idx: usize) -> [usize; NDIM] {
        let [lx, ly, lz, _lt] = self.dims.0;
        let xh = idx % (lx / 2);
        let rem = idx / (lx / 2);
        let y = rem % ly;
        let rem = rem / ly;
        let z = rem % lz;
        let t = rem / lz;
        // Global parity: include origin (even sums for even extents, kept
        // for clarity).
        let osum: usize = self.origin.iter().sum();
        let want = p.index();
        let x = 2 * xh + ((want + y + z + t + osum) % 2);
        [x, y, z, t]
    }

    /// Resolve a stencil hop of `step` (±1 for nearest-neighbour, ±3 for
    /// the Naik term) in direction `mu` from local coordinate `c`.
    ///
    /// `depth` is the ghost-zone depth of the operator (1 for Wilson, 3
    /// for asqtad) and fixes the layer arithmetic for backward ghosts.
    #[inline]
    pub fn neighbor(&self, c: [usize; NDIM], mu: usize, step: isize, depth: usize) -> Neighbor {
        debug_assert!(step != 0 && step.unsigned_abs() <= depth);
        let l = self.dims.extent(mu) as isize;
        let target = c[mu] as isize + step;
        if (0..l).contains(&target) {
            let mut nc = c;
            nc[mu] = target as usize;
            return Neighbor::Interior { idx: self.cb_index(nc) };
        }
        if !self.partitioned[mu] {
            // Periodic wrap on-rank.
            let mut nc = c;
            nc[mu] = target.rem_euclid(l) as usize;
            return Neighbor::Interior { idx: self.cb_index(nc) };
        }
        let face = self.face_vol_cb(mu);
        let slot = self.face_slot(c, mu);
        if target >= l {
            // Overshoot: +µ neighbour's low edge; x_µ = L + k ↦ layer k.
            let k = (target - l) as usize;
            debug_assert!(k < depth);
            Neighbor::Ghost { mu, forward: true, offset: k * face + slot }
        } else {
            // Undershoot: −µ neighbour's high edge; x_µ = −1−k ↦ layer
            // depth−1−k (sender gathers layers l = x_µ − (L−depth)).
            let k = (-1 - target) as usize;
            debug_assert!(k < depth);
            Neighbor::Ghost { mu, forward: false, offset: (depth - 1 - k) * face + slot }
        }
    }

    /// Slot of a site within an `x_µ = const` face of its own parity:
    /// the lexicographic index over the remaining dimensions, halved.
    ///
    /// Valid because the fastest remaining dimension has even extent, so
    /// consecutive lexicographic pairs contain exactly one site of each
    /// parity. Sender gather tables ([`crate::FaceGeometry`]) enumerate
    /// sites in exactly this order.
    #[inline(always)]
    pub fn face_slot(&self, c: [usize; NDIM], mu: usize) -> usize {
        let mut lex = 0;
        let mut stride = 1;
        for d in 0..NDIM {
            if d == mu {
                continue;
            }
            lex += c[d] * stride;
            stride *= self.dims.extent(d);
        }
        lex / 2
    }

    /// Iterate all sites of a parity as `(cb_index, local_coords)`.
    pub fn sites(&self, p: Parity) -> impl Iterator<Item = (usize, [usize; NDIM])> + '_ {
        (0..self.volume_cb()).map(move |idx| (idx, self.cb_coords(p, idx)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcessGrid;
    use proptest::prelude::*;

    fn sub(dims: [usize; NDIM]) -> SubLattice {
        SubLattice::single(Dims(dims)).unwrap()
    }

    #[test]
    fn parity_helpers() {
        assert_eq!(Parity::Even.other(), Parity::Odd);
        assert_eq!(Parity::Odd.other(), Parity::Even);
        assert_eq!(Parity::of_sum(4), Parity::Even);
        assert_eq!(Parity::of_sum(7), Parity::Odd);
    }

    #[test]
    fn cb_index_bijection() {
        let s = sub([4, 6, 4, 8]);
        for p in Parity::BOTH {
            for idx in 0..s.volume_cb() {
                let c = s.cb_coords(p, idx);
                assert_eq!(s.parity(c), p, "coords {c:?}");
                assert_eq!(s.cb_index(c), idx);
            }
        }
    }

    #[test]
    fn all_sites_covered_exactly_once() {
        let s = sub([4, 4, 4, 4]);
        let mut seen = vec![false; s.dims.volume()];
        for p in Parity::BOTH {
            for (_, c) in s.sites(p) {
                let lex = s.dims.index(c);
                assert!(!seen[lex], "{c:?} visited twice");
                seen[lex] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn interior_neighbor_flips_parity_for_odd_steps() {
        let s = sub([4, 4, 4, 4]);
        for (idx, c) in s.sites(Parity::Even) {
            let _ = idx;
            for mu in 0..NDIM {
                for step in [-1isize, 1] {
                    match s.neighbor(c, mu, step, 1) {
                        Neighbor::Interior { idx } => {
                            let nc = s.cb_coords(Parity::Odd, idx);
                            // Neighbour must be one periodic step away.
                            let l = s.dims.extent(mu) as isize;
                            let want = (c[mu] as isize + step).rem_euclid(l) as usize;
                            assert_eq!(nc[mu], want);
                            for d in 0..NDIM {
                                if d != mu {
                                    assert_eq!(nc[d], c[d]);
                                }
                            }
                        }
                        g => panic!("unpartitioned lattice produced ghost {g:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_hops_become_ghosts() {
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let s = SubLattice::for_rank(&grid, 0);
        // Site on the T=0 boundary stepping backward in T crosses a cut.
        let c = [0, 0, 0, 0];
        match s.neighbor(c, 3, -1, 1) {
            Neighbor::Ghost { mu, forward, offset } => {
                assert_eq!(mu, 3);
                assert!(!forward);
                assert_eq!(offset, s.face_slot(c, 3));
            }
            n => panic!("expected ghost, got {n:?}"),
        }
        // Same site stepping backward in X wraps (X unpartitioned).
        assert!(matches!(s.neighbor(c, 0, -1, 1), Neighbor::Interior { .. }));
    }

    #[test]
    fn naik_layer_arithmetic() {
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), Dims([4, 4, 4, 16])).unwrap();
        let s = SubLattice::for_rank(&grid, 0);
        let face = s.face_vol_cb(3);
        // x_t = 0, step -3 → target −3 → k=2 → layer depth−1−k = 0.
        let c0 = [0, 0, 0, 0];
        if let Neighbor::Ghost { offset, forward, .. } = s.neighbor(c0, 3, -3, 3) {
            assert!(!forward);
            assert_eq!(offset / face, 0);
        } else {
            panic!("expected ghost");
        }
        // x_t = 2, step -3 → target −1 → k=0 → layer 2.
        let c2 = [0, 0, 0, 2];
        if let Neighbor::Ghost { offset, .. } = s.neighbor(c2, 3, -3, 3) {
            assert_eq!(offset / face, 2);
        } else {
            panic!("expected ghost");
        }
        // x_t = 7 (=L−1), step +3 → target 10 → k=2 → layer 2, forward.
        let c7 = [0, 0, 0, 7];
        if let Neighbor::Ghost { offset, forward, .. } = s.neighbor(c7, 3, 3, 3) {
            assert!(forward);
            assert_eq!(offset / face, 2);
        } else {
            panic!("expected ghost");
        }
    }

    #[test]
    fn face_slot_is_bijective_per_parity() {
        let s = sub([4, 4, 6, 8]);
        for mu in 0..NDIM {
            for xc in [0, s.dims.extent(mu) - 1] {
                for p in Parity::BOTH {
                    let mut seen = vec![false; s.face_vol_cb(mu)];
                    for (_, c) in s.sites(p) {
                        if c[mu] != xc {
                            continue;
                        }
                        let slot = s.face_slot(c, mu);
                        assert!(!seen[slot], "slot {slot} reused (µ={mu}, parity {p:?})");
                        seen[slot] = true;
                    }
                    assert!(seen.iter().all(|&x| x), "face not covered (µ={mu})");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_cb_roundtrip(dimsel in 0usize..4, idx in 0usize..10_000) {
            let dims = [[4,4,4,4],[2,6,4,8],[8,2,2,4],[6,4,2,10]][dimsel];
            let s = sub(dims);
            let idx = idx % s.volume_cb();
            for p in Parity::BOTH {
                let c = s.cb_coords(p, idx);
                prop_assert_eq!(s.cb_index(c), idx);
                prop_assert_eq!(s.parity(c), p);
            }
        }
    }
}

//! Gather tables for boundary faces.
//!
//! The multi-GPU Dirac operator gathers boundary sites into contiguous
//! buffers before sending them to neighbours (paper §6.1: "the ghost spinor
//! data for the other three dimensions must be collected into contiguous
//! GPU memory buffers by a GPU kernel"). [`FaceGeometry`] precomputes, per
//! partitioned dimension and parity, the checkerboard indices to gather —
//! in exactly the `(layer, slot)` order that
//! [`SubLattice::neighbor`](crate::SubLattice::neighbor) assumes on the
//! receiving side.

use crate::dims::NDIM;
use crate::local::{Parity, SubLattice};
use lqcd_util::{Error, Result};

/// Precomputed gather tables for one subvolume at one stencil depth.
#[derive(Clone, Debug)]
pub struct FaceGeometry {
    /// Ghost-zone depth (1 for Wilson, 3 for improved staggered).
    pub depth: usize,
    /// `low[mu][parity]`: cb indices of sites with `x_µ ∈ [0, depth)`,
    /// layer-major — the payload sent to the −µ neighbour (which stores it
    /// as its *forward* ghost zone).
    low: [[Vec<u32>; 2]; NDIM],
    /// `high[mu][parity]`: cb indices of sites with `x_µ ∈ [L−depth, L)`,
    /// layer-major — sent to the +µ neighbour (stored as *backward* ghost).
    high: [[Vec<u32>; 2]; NDIM],
    /// Face volumes per parity, cached.
    face_vol_cb: [usize; NDIM],
}

impl FaceGeometry {
    /// Build gather tables for every partitioned dimension of `sub`.
    ///
    /// Errors if any partitioned extent is smaller than `depth` (a 3-hop
    /// stencil must not skip over an entire rank) or if `depth` is zero.
    pub fn new(sub: &SubLattice, depth: usize) -> Result<Self> {
        if depth == 0 {
            return Err(Error::Geometry("stencil depth must be positive".into()));
        }
        let mut low: [[Vec<u32>; 2]; NDIM] = Default::default();
        let mut high: [[Vec<u32>; 2]; NDIM] = Default::default();
        let mut face_vol_cb = [0usize; NDIM];
        for mu in 0..NDIM {
            face_vol_cb[mu] = sub.face_vol_cb(mu);
            if !sub.partitioned[mu] {
                continue;
            }
            let l = sub.dims.extent(mu);
            if l < depth {
                return Err(Error::Geometry(format!(
                    "local extent {l} of dim {mu} smaller than stencil depth {depth}"
                )));
            }
            for p in Parity::BOTH {
                let pi = p.index();
                low[mu][pi] = gather_table(sub, mu, p, 0, depth);
                high[mu][pi] = gather_table(sub, mu, p, l - depth, depth);
            }
        }
        Ok(Self { depth, low, high, face_vol_cb })
    }

    /// Gather table for the low face (payload for the −µ neighbour).
    pub fn low_face(&self, mu: usize, p: Parity) -> &[u32] {
        &self.low[mu][p.index()]
    }

    /// Gather table for the high face (payload for the +µ neighbour).
    pub fn high_face(&self, mu: usize, p: Parity) -> &[u32] {
        &self.high[mu][p.index()]
    }

    /// Number of sites in one ghost buffer (`depth × face_vol_cb`).
    pub fn ghost_sites(&self, mu: usize) -> usize {
        self.depth * self.face_vol_cb[mu]
    }

    /// Checkerboard face volume.
    pub fn face_vol_cb(&self, mu: usize) -> usize {
        self.face_vol_cb[mu]
    }
}

/// Enumerate cb indices of parity-`p` sites with `x_µ ∈ [start, start+depth)`,
/// layer-major, slot order within each layer.
fn gather_table(sub: &SubLattice, mu: usize, p: Parity, start: usize, depth: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(depth * sub.face_vol_cb(mu));
    let rem_dims: Vec<usize> = (0..NDIM).filter(|&d| d != mu).collect();
    let rem_extents: Vec<usize> = rem_dims.iter().map(|&d| sub.dims.extent(d)).collect();
    let rem_vol: usize = rem_extents.iter().product();
    for layer in 0..depth {
        let xmu = start + layer;
        for lex in 0..rem_vol {
            // Unpack lex over remaining dims, fastest first.
            let mut c = [0usize; NDIM];
            c[mu] = xmu;
            let mut r = lex;
            for (k, &d) in rem_dims.iter().enumerate() {
                c[d] = r % rem_extents[k];
                r /= rem_extents[k];
            }
            if sub.parity(c) == p {
                debug_assert_eq!(out.len() % sub.face_vol_cb(mu), sub.face_slot(c, mu));
                out.push(sub.cb_index(c) as u32);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims;
    use crate::grid::ProcessGrid;
    use crate::local::Neighbor;

    fn fully_partitioned(dims: [usize; NDIM]) -> SubLattice {
        let mut s = SubLattice::single(Dims(dims)).unwrap();
        s.partitioned = [true; NDIM];
        s
    }

    #[test]
    fn rejects_zero_depth_and_thin_ranks() {
        let s = fully_partitioned([4, 4, 4, 4]);
        assert!(FaceGeometry::new(&s, 0).is_err());
        let thin = fully_partitioned([2, 4, 4, 4]);
        assert!(FaceGeometry::new(&thin, 3).is_err());
        assert!(FaceGeometry::new(&thin, 1).is_ok());
    }

    #[test]
    fn table_sizes_match_ghost_sites() {
        let s = fully_partitioned([4, 6, 4, 8]);
        for depth in [1, 3] {
            let f = FaceGeometry::new(&s, depth).unwrap();
            for mu in 0..NDIM {
                for p in Parity::BOTH {
                    assert_eq!(f.low_face(mu, p).len(), f.ghost_sites(mu));
                    assert_eq!(f.high_face(mu, p).len(), f.ghost_sites(mu));
                }
            }
        }
    }

    #[test]
    fn unpartitioned_dims_have_empty_tables() {
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), Dims([4, 4, 4, 8])).unwrap();
        let s = SubLattice::for_rank(&grid, 0);
        let f = FaceGeometry::new(&s, 1).unwrap();
        assert!(f.low_face(0, Parity::Even).is_empty());
        assert!(!f.low_face(3, Parity::Even).is_empty());
    }

    /// The load-bearing consistency test: a hop that resolves to
    /// `Ghost { offset }` on the receiver must find, at position `offset`
    /// of the sender's gather table, exactly the global site the hop
    /// physically targets.
    #[test]
    fn gather_order_matches_receiver_offsets() {
        // Two ranks along T and two along Z; check every boundary hop.
        let global = Dims([4, 4, 8, 8]);
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), global).unwrap();
        for depth in [1usize, 3] {
            for rank in 0..grid.num_ranks() {
                let me = SubLattice::for_rank(&grid, rank);
                let faces_of =
                    |r: usize| FaceGeometry::new(&SubLattice::for_rank(&grid, r), depth).unwrap();
                for p in Parity::BOTH {
                    for (_, c) in me.sites(p) {
                        for mu in 0..NDIM {
                            for step in [-(depth as isize), -1, 1, depth as isize] {
                                if step.unsigned_abs() > depth {
                                    continue;
                                }
                                let hop = me.neighbor(c, mu, step, depth);
                                let Neighbor::Ghost { mu: gmu, forward, offset } = hop else {
                                    continue;
                                };
                                assert_eq!(gmu, mu);
                                // Identify the neighbouring rank and its table.
                                let nrank = grid.neighbor_rank(rank, mu, forward);
                                let neigh = SubLattice::for_rank(&grid, nrank);
                                let ftab = faces_of(nrank);
                                // Neighbour parity flips with odd |step|.
                                let np = if step % 2 != 0 { p.other() } else { p };
                                let table = if forward {
                                    ftab.low_face(mu, np)
                                } else {
                                    ftab.high_face(mu, np)
                                };
                                let got_idx = table[offset] as usize;
                                let got_global = {
                                    let lc = neigh.cb_coords(np, got_idx);
                                    let mut g = [0usize; NDIM];
                                    for d in 0..NDIM {
                                        g[d] = lc[d] + neigh.origin[d];
                                    }
                                    g
                                };
                                // The hop's physical target in global coords.
                                let mut want = [0usize; NDIM];
                                for d in 0..NDIM {
                                    want[d] = c[d] + me.origin[d];
                                }
                                let want = global.displace(want, mu, step);
                                assert_eq!(
                                    got_global, want,
                                    "rank {rank} µ={mu} step {step} site {c:?} (depth {depth})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

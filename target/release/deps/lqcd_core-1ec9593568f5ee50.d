/root/repo/target/release/deps/lqcd_core-1ec9593568f5ee50.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

/root/repo/target/release/deps/lqcd_core-1ec9593568f5ee50: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/drivers.rs:
crates/core/src/ensemble.rs:
crates/core/src/observables.rs:
crates/core/src/problem.rs:

/root/repo/target/release/deps/lqcd_util-a12e4bca4bb29497.d: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/release/deps/liblqcd_util-a12e4bca4bb29497.rlib: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/release/deps/liblqcd_util-a12e4bca4bb29497.rmeta: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

crates/util/src/lib.rs:
crates/util/src/complex.rs:
crates/util/src/error.rs:
crates/util/src/half.rs:
crates/util/src/real.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:

/root/repo/target/release/deps/distributed-b7ff70b5d4b48197.d: crates/dirac/tests/distributed.rs

/root/repo/target/release/deps/distributed-b7ff70b5d4b48197: crates/dirac/tests/distributed.rs

crates/dirac/tests/distributed.rs:

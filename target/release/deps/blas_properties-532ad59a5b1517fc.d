/root/repo/target/release/deps/blas_properties-532ad59a5b1517fc.d: crates/field/tests/blas_properties.rs

/root/repo/target/release/deps/blas_properties-532ad59a5b1517fc: crates/field/tests/blas_properties.rs

crates/field/tests/blas_properties.rs:

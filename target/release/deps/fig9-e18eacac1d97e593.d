/root/repo/target/release/deps/fig9-e18eacac1d97e593.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-e18eacac1d97e593: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:

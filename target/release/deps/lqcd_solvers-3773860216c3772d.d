/root/repo/target/release/deps/lqcd_solvers-3773860216c3772d.d: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs

/root/repo/target/release/deps/liblqcd_solvers-3773860216c3772d.rlib: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs

/root/repo/target/release/deps/liblqcd_solvers-3773860216c3772d.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs

crates/solvers/src/lib.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/cgnr.rs:
crates/solvers/src/gcr.rs:
crates/solvers/src/lanczos.rs:
crates/solvers/src/mixed.rs:
crates/solvers/src/mr.rs:
crates/solvers/src/multishift.rs:
crates/solvers/src/space.rs:
crates/solvers/src/spaces.rs:

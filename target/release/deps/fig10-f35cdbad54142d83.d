/root/repo/target/release/deps/fig10-f35cdbad54142d83.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-f35cdbad54142d83: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:

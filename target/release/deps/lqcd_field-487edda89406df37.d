/root/repo/target/release/deps/lqcd_field-487edda89406df37.d: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

/root/repo/target/release/deps/liblqcd_field-487edda89406df37.rlib: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

/root/repo/target/release/deps/liblqcd_field-487edda89406df37.rmeta: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

crates/field/src/lib.rs:
crates/field/src/blas.rs:
crates/field/src/field.rs:
crates/field/src/half.rs:
crates/field/src/layout.rs:
crates/field/src/site.rs:

/root/repo/target/release/deps/fig7-d0895abaaa542adf.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-d0895abaaa542adf: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:

/root/repo/target/release/deps/lqcd_su3-8ab9a83618cb7342.d: crates/su3/src/lib.rs crates/su3/src/clover.rs crates/su3/src/compress.rs crates/su3/src/gamma.rs crates/su3/src/matrix.rs crates/su3/src/spinor.rs crates/su3/src/vector.rs

/root/repo/target/release/deps/lqcd_su3-8ab9a83618cb7342: crates/su3/src/lib.rs crates/su3/src/clover.rs crates/su3/src/compress.rs crates/su3/src/gamma.rs crates/su3/src/matrix.rs crates/su3/src/spinor.rs crates/su3/src/vector.rs

crates/su3/src/lib.rs:
crates/su3/src/clover.rs:
crates/su3/src/compress.rs:
crates/su3/src/gamma.rs:
crates/su3/src/matrix.rs:
crates/su3/src/spinor.rs:
crates/su3/src/vector.rs:

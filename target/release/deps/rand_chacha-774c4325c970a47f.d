/root/repo/target/release/deps/rand_chacha-774c4325c970a47f.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-774c4325c970a47f.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-774c4325c970a47f.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:

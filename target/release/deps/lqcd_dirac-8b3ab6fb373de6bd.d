/root/repo/target/release/deps/lqcd_dirac-8b3ab6fb373de6bd.d: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

/root/repo/target/release/deps/lqcd_dirac-8b3ab6fb373de6bd: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

crates/dirac/src/lib.rs:
crates/dirac/src/exchange.rs:
crates/dirac/src/reference.rs:
crates/dirac/src/staggered.rs:
crates/dirac/src/wilson.rs:

/root/repo/target/release/deps/serde_derive-c9c7582f9f833a52.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-c9c7582f9f833a52.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:

/root/repo/target/release/deps/fig4-82eae503a094b8da.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-82eae503a094b8da: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:

/root/repo/target/release/deps/ablations-2a9a3b61e3a57c8f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-2a9a3b61e3a57c8f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:

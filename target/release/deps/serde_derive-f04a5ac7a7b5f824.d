/root/repo/target/release/deps/serde_derive-f04a5ac7a7b5f824.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-f04a5ac7a7b5f824: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:

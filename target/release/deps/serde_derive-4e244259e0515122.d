/root/repo/target/release/deps/serde_derive-4e244259e0515122.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4e244259e0515122.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:

/root/repo/target/release/deps/lqcd_lattice-9eb2797cdbda1e4d.d: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

/root/repo/target/release/deps/lqcd_lattice-9eb2797cdbda1e4d: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

crates/lattice/src/lib.rs:
crates/lattice/src/dims.rs:
crates/lattice/src/face.rs:
crates/lattice/src/grid.rs:
crates/lattice/src/local.rs:

/root/repo/target/release/deps/fig4-1e76e7adf2c1fba8.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-1e76e7adf2c1fba8: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:

/root/repo/target/release/deps/lqcd_bench-6051d0f4aaf40901.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/lqcd_bench-6051d0f4aaf40901: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench

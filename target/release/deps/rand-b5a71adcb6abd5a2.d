/root/repo/target/release/deps/rand-b5a71adcb6abd5a2.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-b5a71adcb6abd5a2: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

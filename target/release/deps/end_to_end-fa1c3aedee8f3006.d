/root/repo/target/release/deps/end_to_end-fa1c3aedee8f3006.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-fa1c3aedee8f3006: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/release/deps/serde-897ac1323529904d.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-897ac1323529904d.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-897ac1323529904d.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:

/root/repo/target/release/deps/lqcd-a5f1d85d0af268c6.d: src/lib.rs

/root/repo/target/release/deps/liblqcd-a5f1d85d0af268c6.rlib: src/lib.rs

/root/repo/target/release/deps/liblqcd-a5f1d85d0af268c6.rmeta: src/lib.rs

src/lib.rs:

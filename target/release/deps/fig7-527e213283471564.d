/root/repo/target/release/deps/fig7-527e213283471564.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-527e213283471564: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:

/root/repo/target/release/deps/lqcd_util-6969ed7a9ee424c4.d: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/release/deps/lqcd_util-6969ed7a9ee424c4: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

crates/util/src/lib.rs:
crates/util/src/complex.rs:
crates/util/src/error.rs:
crates/util/src/half.rs:
crates/util/src/real.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:

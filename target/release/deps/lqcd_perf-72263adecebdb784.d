/root/repo/target/release/deps/lqcd_perf-72263adecebdb784.d: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

/root/repo/target/release/deps/lqcd_perf-72263adecebdb784: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

crates/perf/src/lib.rs:
crates/perf/src/capability.rs:
crates/perf/src/cost.rs:
crates/perf/src/model.rs:
crates/perf/src/solver_model.rs:
crates/perf/src/streams.rs:
crates/perf/src/sweep.rs:

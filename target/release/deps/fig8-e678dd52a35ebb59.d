/root/repo/target/release/deps/fig8-e678dd52a35ebb59.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-e678dd52a35ebb59: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:

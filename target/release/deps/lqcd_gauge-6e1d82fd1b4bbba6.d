/root/repo/target/release/deps/lqcd_gauge-6e1d82fd1b4bbba6.d: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

/root/repo/target/release/deps/lqcd_gauge-6e1d82fd1b4bbba6: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

crates/gauge/src/lib.rs:
crates/gauge/src/asqtad.rs:
crates/gauge/src/clover_build.rs:
crates/gauge/src/field.rs:
crates/gauge/src/heatbath.rs:
crates/gauge/src/hmc.rs:
crates/gauge/src/io.rs:
crates/gauge/src/paths.rs:
crates/gauge/src/plaquette.rs:

/root/repo/target/release/deps/serde-b303ff6eb26abc5d.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/serde-b303ff6eb26abc5d: shims/serde/src/lib.rs

shims/serde/src/lib.rs:

/root/repo/target/release/deps/fig9-6b94978e7d4010e7.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-6b94978e7d4010e7: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:

/root/repo/target/release/deps/lqcd_gauge-e96811a3bf4fea77.d: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

/root/repo/target/release/deps/liblqcd_gauge-e96811a3bf4fea77.rlib: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

/root/repo/target/release/deps/liblqcd_gauge-e96811a3bf4fea77.rmeta: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

crates/gauge/src/lib.rs:
crates/gauge/src/asqtad.rs:
crates/gauge/src/clover_build.rs:
crates/gauge/src/field.rs:
crates/gauge/src/heatbath.rs:
crates/gauge/src/hmc.rs:
crates/gauge/src/io.rs:
crates/gauge/src/paths.rs:
crates/gauge/src/plaquette.rs:

/root/repo/target/release/deps/lqcd_comms-b05d1aa132c95205.d: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

/root/repo/target/release/deps/liblqcd_comms-b05d1aa132c95205.rlib: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

/root/repo/target/release/deps/liblqcd_comms-b05d1aa132c95205.rmeta: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

crates/comms/src/lib.rs:
crates/comms/src/comm.rs:
crates/comms/src/faulty.rs:
crates/comms/src/single.rs:
crates/comms/src/threaded.rs:

/root/repo/target/release/deps/serde_json-89688fd9bbcf52d2.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-89688fd9bbcf52d2: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

/root/repo/target/release/deps/fig6-c3fff42b5c9425e1.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-c3fff42b5c9425e1: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:

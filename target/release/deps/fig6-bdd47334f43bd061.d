/root/repo/target/release/deps/fig6-bdd47334f43bd061.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-bdd47334f43bd061: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:

/root/repo/target/release/deps/serde_json-ff75f152df9aa689.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ff75f152df9aa689.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-ff75f152df9aa689.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

/root/repo/target/release/deps/lattice_solves-9cb40b6bdf147b4b.d: crates/solvers/tests/lattice_solves.rs

/root/repo/target/release/deps/lattice_solves-9cb40b6bdf147b4b: crates/solvers/tests/lattice_solves.rs

crates/solvers/tests/lattice_solves.rs:

/root/repo/target/release/deps/fig5-aef4d0861c45e6ef.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-aef4d0861c45e6ef: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:

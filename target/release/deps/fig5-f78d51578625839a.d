/root/repo/target/release/deps/fig5-f78d51578625839a.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f78d51578625839a: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:

/root/repo/target/release/deps/chaos-25676ea462c443e1.d: crates/comms/tests/chaos.rs

/root/repo/target/release/deps/chaos-25676ea462c443e1: crates/comms/tests/chaos.rs

crates/comms/tests/chaos.rs:

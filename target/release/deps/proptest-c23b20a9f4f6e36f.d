/root/repo/target/release/deps/proptest-c23b20a9f4f6e36f.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-c23b20a9f4f6e36f: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

/root/repo/target/release/deps/chaos_solves-e6f453a6bc8f983f.d: crates/solvers/tests/chaos_solves.rs

/root/repo/target/release/deps/chaos_solves-e6f453a6bc8f983f: crates/solvers/tests/chaos_solves.rs

crates/solvers/tests/chaos_solves.rs:

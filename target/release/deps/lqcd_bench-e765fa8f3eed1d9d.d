/root/repo/target/release/deps/lqcd_bench-e765fa8f3eed1d9d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblqcd_bench-e765fa8f3eed1d9d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/liblqcd_bench-e765fa8f3eed1d9d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench

/root/repo/target/release/deps/figures-f34d7bf34921424c.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-f34d7bf34921424c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:

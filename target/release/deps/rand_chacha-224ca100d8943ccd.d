/root/repo/target/release/deps/rand_chacha-224ca100d8943ccd.d: shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-224ca100d8943ccd: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:

/root/repo/target/release/deps/lqcd-e2df8153130a60aa.d: src/lib.rs

/root/repo/target/release/deps/lqcd-e2df8153130a60aa: src/lib.rs

src/lib.rs:

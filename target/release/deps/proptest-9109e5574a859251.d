/root/repo/target/release/deps/proptest-9109e5574a859251.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9109e5574a859251.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9109e5574a859251.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

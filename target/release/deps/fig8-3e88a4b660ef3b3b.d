/root/repo/target/release/deps/fig8-3e88a4b660ef3b3b.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-3e88a4b660ef3b3b: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:

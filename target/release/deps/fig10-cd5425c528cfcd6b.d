/root/repo/target/release/deps/fig10-cd5425c528cfcd6b.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-cd5425c528cfcd6b: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:

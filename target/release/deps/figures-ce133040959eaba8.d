/root/repo/target/release/deps/figures-ce133040959eaba8.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-ce133040959eaba8: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:

/root/repo/target/release/deps/criterion-1213fd2ec2d93327.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-1213fd2ec2d93327: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:

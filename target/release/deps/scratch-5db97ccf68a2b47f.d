/root/repo/target/release/deps/scratch-5db97ccf68a2b47f.d: crates/comms/tests/scratch.rs

/root/repo/target/release/deps/scratch-5db97ccf68a2b47f: crates/comms/tests/scratch.rs

crates/comms/tests/scratch.rs:

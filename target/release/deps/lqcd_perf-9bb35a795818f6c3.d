/root/repo/target/release/deps/lqcd_perf-9bb35a795818f6c3.d: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

/root/repo/target/release/deps/liblqcd_perf-9bb35a795818f6c3.rlib: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

/root/repo/target/release/deps/liblqcd_perf-9bb35a795818f6c3.rmeta: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

crates/perf/src/lib.rs:
crates/perf/src/capability.rs:
crates/perf/src/cost.rs:
crates/perf/src/model.rs:
crates/perf/src/solver_model.rs:
crates/perf/src/streams.rs:
crates/perf/src/sweep.rs:

/root/repo/target/release/deps/lqcd_lattice-779e87b6dd4ac067.d: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

/root/repo/target/release/deps/liblqcd_lattice-779e87b6dd4ac067.rlib: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

/root/repo/target/release/deps/liblqcd_lattice-779e87b6dd4ac067.rmeta: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

crates/lattice/src/lib.rs:
crates/lattice/src/dims.rs:
crates/lattice/src/face.rs:
crates/lattice/src/grid.rs:
crates/lattice/src/local.rs:

/root/repo/target/release/deps/chaos_exchange-4eb1051f0f5ea2f8.d: crates/dirac/tests/chaos_exchange.rs

/root/repo/target/release/deps/chaos_exchange-4eb1051f0f5ea2f8: crates/dirac/tests/chaos_exchange.rs

crates/dirac/tests/chaos_exchange.rs:

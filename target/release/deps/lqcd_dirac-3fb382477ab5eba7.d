/root/repo/target/release/deps/lqcd_dirac-3fb382477ab5eba7.d: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

/root/repo/target/release/deps/liblqcd_dirac-3fb382477ab5eba7.rlib: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

/root/repo/target/release/deps/liblqcd_dirac-3fb382477ab5eba7.rmeta: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

crates/dirac/src/lib.rs:
crates/dirac/src/exchange.rs:
crates/dirac/src/reference.rs:
crates/dirac/src/staggered.rs:
crates/dirac/src/wilson.rs:

/root/repo/target/release/deps/criterion-21f65edd8f3e1b45.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-21f65edd8f3e1b45.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-21f65edd8f3e1b45.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:

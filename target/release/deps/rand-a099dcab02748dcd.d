/root/repo/target/release/deps/rand-a099dcab02748dcd.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a099dcab02748dcd.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a099dcab02748dcd.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

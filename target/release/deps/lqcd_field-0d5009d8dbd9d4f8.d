/root/repo/target/release/deps/lqcd_field-0d5009d8dbd9d4f8.d: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

/root/repo/target/release/deps/lqcd_field-0d5009d8dbd9d4f8: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

crates/field/src/lib.rs:
crates/field/src/blas.rs:
crates/field/src/field.rs:
crates/field/src/half.rs:
crates/field/src/layout.rs:
crates/field/src/site.rs:

/root/repo/target/release/deps/lqcd_comms-85499de3c525fcb0.d: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

/root/repo/target/release/deps/lqcd_comms-85499de3c525fcb0: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

crates/comms/src/lib.rs:
crates/comms/src/comm.rs:
crates/comms/src/faulty.rs:
crates/comms/src/single.rs:
crates/comms/src/threaded.rs:

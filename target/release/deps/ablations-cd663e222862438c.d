/root/repo/target/release/deps/ablations-cd663e222862438c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-cd663e222862438c: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:

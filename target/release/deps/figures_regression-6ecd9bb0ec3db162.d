/root/repo/target/release/deps/figures_regression-6ecd9bb0ec3db162.d: tests/figures_regression.rs

/root/repo/target/release/deps/figures_regression-6ecd9bb0ec3db162: tests/figures_regression.rs

tests/figures_regression.rs:

/root/repo/target/release/deps/lqcd_core-d5538e8f601430cb.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

/root/repo/target/release/deps/liblqcd_core-d5538e8f601430cb.rlib: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

/root/repo/target/release/deps/liblqcd_core-d5538e8f601430cb.rmeta: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/drivers.rs:
crates/core/src/ensemble.rs:
crates/core/src/observables.rs:
crates/core/src/problem.rs:

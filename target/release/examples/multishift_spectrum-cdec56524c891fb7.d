/root/repo/target/release/examples/multishift_spectrum-cdec56524c891fb7.d: examples/multishift_spectrum.rs

/root/repo/target/release/examples/multishift_spectrum-cdec56524c891fb7: examples/multishift_spectrum.rs

examples/multishift_spectrum.rs:

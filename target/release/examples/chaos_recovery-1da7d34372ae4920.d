/root/repo/target/release/examples/chaos_recovery-1da7d34372ae4920.d: examples/chaos_recovery.rs

/root/repo/target/release/examples/chaos_recovery-1da7d34372ae4920: examples/chaos_recovery.rs

examples/chaos_recovery.rs:

/root/repo/target/release/examples/pion_correlator-7744e4d5a1c0395a.d: examples/pion_correlator.rs

/root/repo/target/release/examples/pion_correlator-7744e4d5a1c0395a: examples/pion_correlator.rs

examples/pion_correlator.rs:

/root/repo/target/release/examples/strong_scaling-e0730cda899e72dc.d: examples/strong_scaling.rs

/root/repo/target/release/examples/strong_scaling-e0730cda899e72dc: examples/strong_scaling.rs

examples/strong_scaling.rs:

/root/repo/target/release/examples/stream_timeline-46db0603b96f44e3.d: examples/stream_timeline.rs

/root/repo/target/release/examples/stream_timeline-46db0603b96f44e3: examples/stream_timeline.rs

examples/stream_timeline.rs:

/root/repo/target/release/examples/quickstart-1030bc81c8137fff.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1030bc81c8137fff: examples/quickstart.rs

examples/quickstart.rs:

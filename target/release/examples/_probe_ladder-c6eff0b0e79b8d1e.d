/root/repo/target/release/examples/_probe_ladder-c6eff0b0e79b8d1e.d: examples/_probe_ladder.rs

/root/repo/target/release/examples/_probe_ladder-c6eff0b0e79b8d1e: examples/_probe_ladder.rs

examples/_probe_ladder.rs:

/root/repo/target/release/examples/gauge_generation-d0d426c64228da69.d: examples/gauge_generation.rs

/root/repo/target/release/examples/gauge_generation-d0d426c64228da69: examples/gauge_generation.rs

examples/gauge_generation.rs:

/root/repo/target/debug/examples/gauge_generation-b99146ef74f2520e.d: examples/gauge_generation.rs Cargo.toml

/root/repo/target/debug/examples/libgauge_generation-b99146ef74f2520e.rmeta: examples/gauge_generation.rs Cargo.toml

examples/gauge_generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/stream_timeline-f861e0b264ca4a1b.d: examples/stream_timeline.rs

/root/repo/target/debug/examples/stream_timeline-f861e0b264ca4a1b: examples/stream_timeline.rs

examples/stream_timeline.rs:

/root/repo/target/debug/examples/strong_scaling-fce4cd5a5208799b.d: examples/strong_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libstrong_scaling-fce4cd5a5208799b.rmeta: examples/strong_scaling.rs Cargo.toml

examples/strong_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

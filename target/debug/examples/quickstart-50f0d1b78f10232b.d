/root/repo/target/debug/examples/quickstart-50f0d1b78f10232b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-50f0d1b78f10232b: examples/quickstart.rs

examples/quickstart.rs:

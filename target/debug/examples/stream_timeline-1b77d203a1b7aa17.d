/root/repo/target/debug/examples/stream_timeline-1b77d203a1b7aa17.d: examples/stream_timeline.rs Cargo.toml

/root/repo/target/debug/examples/libstream_timeline-1b77d203a1b7aa17.rmeta: examples/stream_timeline.rs Cargo.toml

examples/stream_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/multishift_spectrum-b56f782a3a2f8389.d: examples/multishift_spectrum.rs

/root/repo/target/debug/examples/multishift_spectrum-b56f782a3a2f8389: examples/multishift_spectrum.rs

examples/multishift_spectrum.rs:

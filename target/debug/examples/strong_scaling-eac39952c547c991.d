/root/repo/target/debug/examples/strong_scaling-eac39952c547c991.d: examples/strong_scaling.rs

/root/repo/target/debug/examples/strong_scaling-eac39952c547c991: examples/strong_scaling.rs

examples/strong_scaling.rs:

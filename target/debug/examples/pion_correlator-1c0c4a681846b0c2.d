/root/repo/target/debug/examples/pion_correlator-1c0c4a681846b0c2.d: examples/pion_correlator.rs Cargo.toml

/root/repo/target/debug/examples/libpion_correlator-1c0c4a681846b0c2.rmeta: examples/pion_correlator.rs Cargo.toml

examples/pion_correlator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/gauge_generation-aa4175df2b0d6e3e.d: examples/gauge_generation.rs

/root/repo/target/debug/examples/gauge_generation-aa4175df2b0d6e3e: examples/gauge_generation.rs

examples/gauge_generation.rs:

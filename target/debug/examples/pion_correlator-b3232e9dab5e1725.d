/root/repo/target/debug/examples/pion_correlator-b3232e9dab5e1725.d: examples/pion_correlator.rs

/root/repo/target/debug/examples/pion_correlator-b3232e9dab5e1725: examples/pion_correlator.rs

examples/pion_correlator.rs:

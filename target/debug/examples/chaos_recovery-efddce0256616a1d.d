/root/repo/target/debug/examples/chaos_recovery-efddce0256616a1d.d: examples/chaos_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_recovery-efddce0256616a1d.rmeta: examples/chaos_recovery.rs Cargo.toml

examples/chaos_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

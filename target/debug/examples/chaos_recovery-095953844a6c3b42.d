/root/repo/target/debug/examples/chaos_recovery-095953844a6c3b42.d: examples/chaos_recovery.rs

/root/repo/target/debug/examples/chaos_recovery-095953844a6c3b42: examples/chaos_recovery.rs

examples/chaos_recovery.rs:

/root/repo/target/debug/examples/quickstart-3b86c264fbe8d32a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3b86c264fbe8d32a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/multishift_spectrum-c4022691eb45f733.d: examples/multishift_spectrum.rs Cargo.toml

/root/repo/target/debug/examples/libmultishift_spectrum-c4022691eb45f733.rmeta: examples/multishift_spectrum.rs Cargo.toml

examples/multishift_spectrum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

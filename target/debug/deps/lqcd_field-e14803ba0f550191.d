/root/repo/target/debug/deps/lqcd_field-e14803ba0f550191.d: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_field-e14803ba0f550191.rmeta: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs Cargo.toml

crates/field/src/lib.rs:
crates/field/src/blas.rs:
crates/field/src/field.rs:
crates/field/src/half.rs:
crates/field/src/layout.rs:
crates/field/src/site.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

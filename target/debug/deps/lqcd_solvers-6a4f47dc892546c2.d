/root/repo/target/debug/deps/lqcd_solvers-6a4f47dc892546c2.d: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_solvers-6a4f47dc892546c2.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs Cargo.toml

crates/solvers/src/lib.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/cgnr.rs:
crates/solvers/src/gcr.rs:
crates/solvers/src/lanczos.rs:
crates/solvers/src/mixed.rs:
crates/solvers/src/mr.rs:
crates/solvers/src/multishift.rs:
crates/solvers/src/space.rs:
crates/solvers/src/spaces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

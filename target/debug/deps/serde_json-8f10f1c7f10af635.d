/root/repo/target/debug/deps/serde_json-8f10f1c7f10af635.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-8f10f1c7f10af635.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand_chacha-c838d232f4da5f93.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-c838d232f4da5f93.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-2f7768a72a30d75a.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2f7768a72a30d75a.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_dirac-7c75e210e9989e6e.d: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_dirac-7c75e210e9989e6e.rmeta: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs Cargo.toml

crates/dirac/src/lib.rs:
crates/dirac/src/exchange.rs:
crates/dirac/src/reference.rs:
crates/dirac/src/staggered.rs:
crates/dirac/src/wilson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_core-8a14b268f15377bf.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

/root/repo/target/debug/deps/lqcd_core-8a14b268f15377bf: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/drivers.rs:
crates/core/src/ensemble.rs:
crates/core/src/observables.rs:
crates/core/src/problem.rs:

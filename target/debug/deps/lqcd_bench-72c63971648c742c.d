/root/repo/target/debug/deps/lqcd_bench-72c63971648c742c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_bench-72c63971648c742c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_gauge-c44f1eb49fd1be96.d: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

/root/repo/target/debug/deps/liblqcd_gauge-c44f1eb49fd1be96.rlib: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

/root/repo/target/debug/deps/liblqcd_gauge-c44f1eb49fd1be96.rmeta: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs

crates/gauge/src/lib.rs:
crates/gauge/src/asqtad.rs:
crates/gauge/src/clover_build.rs:
crates/gauge/src/field.rs:
crates/gauge/src/heatbath.rs:
crates/gauge/src/hmc.rs:
crates/gauge/src/io.rs:
crates/gauge/src/paths.rs:
crates/gauge/src/plaquette.rs:

/root/repo/target/debug/deps/serde_json-b7ca8aefc0d225c9.d: shims/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-b7ca8aefc0d225c9.rmeta: shims/serde_json/src/lib.rs Cargo.toml

shims/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

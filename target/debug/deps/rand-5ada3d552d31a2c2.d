/root/repo/target/debug/deps/rand-5ada3d552d31a2c2.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5ada3d552d31a2c2.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5ada3d552d31a2c2.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:

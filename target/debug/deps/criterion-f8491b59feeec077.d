/root/repo/target/debug/deps/criterion-f8491b59feeec077.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-f8491b59feeec077.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablations-803da10954c1da3d.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-803da10954c1da3d.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/chaos_solves-e5954fc03726c192.d: crates/solvers/tests/chaos_solves.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_solves-e5954fc03726c192.rmeta: crates/solvers/tests/chaos_solves.rs Cargo.toml

crates/solvers/tests/chaos_solves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

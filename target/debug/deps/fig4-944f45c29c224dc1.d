/root/repo/target/debug/deps/fig4-944f45c29c224dc1.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-944f45c29c224dc1.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_bench-9d5e795944bd3138.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_bench-9d5e795944bd3138.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

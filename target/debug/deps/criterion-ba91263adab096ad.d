/root/repo/target/debug/deps/criterion-ba91263adab096ad.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-ba91263adab096ad.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

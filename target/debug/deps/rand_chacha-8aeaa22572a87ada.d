/root/repo/target/debug/deps/rand_chacha-8aeaa22572a87ada.d: shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-8aeaa22572a87ada.rmeta: shims/rand_chacha/src/lib.rs Cargo.toml

shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

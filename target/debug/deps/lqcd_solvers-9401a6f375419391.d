/root/repo/target/debug/deps/lqcd_solvers-9401a6f375419391.d: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs

/root/repo/target/debug/deps/liblqcd_solvers-9401a6f375419391.rlib: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs

/root/repo/target/debug/deps/liblqcd_solvers-9401a6f375419391.rmeta: crates/solvers/src/lib.rs crates/solvers/src/bicgstab.rs crates/solvers/src/cg.rs crates/solvers/src/cgnr.rs crates/solvers/src/gcr.rs crates/solvers/src/lanczos.rs crates/solvers/src/mixed.rs crates/solvers/src/mr.rs crates/solvers/src/multishift.rs crates/solvers/src/space.rs crates/solvers/src/spaces.rs

crates/solvers/src/lib.rs:
crates/solvers/src/bicgstab.rs:
crates/solvers/src/cg.rs:
crates/solvers/src/cgnr.rs:
crates/solvers/src/gcr.rs:
crates/solvers/src/lanczos.rs:
crates/solvers/src/mixed.rs:
crates/solvers/src/mr.rs:
crates/solvers/src/multishift.rs:
crates/solvers/src/space.rs:
crates/solvers/src/spaces.rs:

/root/repo/target/debug/deps/serde_json-06bc3d895f93b5cd.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-06bc3d895f93b5cd.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-06bc3d895f93b5cd.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:

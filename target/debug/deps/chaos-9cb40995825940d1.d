/root/repo/target/debug/deps/chaos-9cb40995825940d1.d: crates/comms/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-9cb40995825940d1.rmeta: crates/comms/tests/chaos.rs Cargo.toml

crates/comms/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/end_to_end-2c3a43edb54552bd.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2c3a43edb54552bd: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/debug/deps/lqcd_lattice-9fb055f456af4b1d.d: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_lattice-9fb055f456af4b1d.rmeta: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs Cargo.toml

crates/lattice/src/lib.rs:
crates/lattice/src/dims.rs:
crates/lattice/src/face.rs:
crates/lattice/src/grid.rs:
crates/lattice/src/local.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

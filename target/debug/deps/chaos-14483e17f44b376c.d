/root/repo/target/debug/deps/chaos-14483e17f44b376c.d: crates/comms/tests/chaos.rs

/root/repo/target/debug/deps/chaos-14483e17f44b376c: crates/comms/tests/chaos.rs

crates/comms/tests/chaos.rs:

/root/repo/target/debug/deps/fig9-34a5dd7b58ed0c36.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-34a5dd7b58ed0c36.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

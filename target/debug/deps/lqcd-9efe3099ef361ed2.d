/root/repo/target/debug/deps/lqcd-9efe3099ef361ed2.d: src/lib.rs

/root/repo/target/debug/deps/lqcd-9efe3099ef361ed2: src/lib.rs

src/lib.rs:

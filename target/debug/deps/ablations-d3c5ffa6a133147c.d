/root/repo/target/debug/deps/ablations-d3c5ffa6a133147c.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-d3c5ffa6a133147c.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig10-fcfcccc1f8fdb375.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-fcfcccc1f8fdb375.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

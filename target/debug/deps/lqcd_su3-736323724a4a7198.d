/root/repo/target/debug/deps/lqcd_su3-736323724a4a7198.d: crates/su3/src/lib.rs crates/su3/src/clover.rs crates/su3/src/compress.rs crates/su3/src/gamma.rs crates/su3/src/matrix.rs crates/su3/src/spinor.rs crates/su3/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_su3-736323724a4a7198.rmeta: crates/su3/src/lib.rs crates/su3/src/clover.rs crates/su3/src/compress.rs crates/su3/src/gamma.rs crates/su3/src/matrix.rs crates/su3/src/spinor.rs crates/su3/src/vector.rs Cargo.toml

crates/su3/src/lib.rs:
crates/su3/src/clover.rs:
crates/su3/src/compress.rs:
crates/su3/src/gamma.rs:
crates/su3/src/matrix.rs:
crates/su3/src/spinor.rs:
crates/su3/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

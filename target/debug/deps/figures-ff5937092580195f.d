/root/repo/target/debug/deps/figures-ff5937092580195f.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-ff5937092580195f.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

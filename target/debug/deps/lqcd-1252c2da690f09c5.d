/root/repo/target/debug/deps/lqcd-1252c2da690f09c5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd-1252c2da690f09c5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

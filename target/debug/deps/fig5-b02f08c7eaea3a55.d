/root/repo/target/debug/deps/fig5-b02f08c7eaea3a55.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-b02f08c7eaea3a55.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

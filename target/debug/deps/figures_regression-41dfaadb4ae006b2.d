/root/repo/target/debug/deps/figures_regression-41dfaadb4ae006b2.d: tests/figures_regression.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_regression-41dfaadb4ae006b2.rmeta: tests/figures_regression.rs Cargo.toml

tests/figures_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig5-3ed4cbc5d9407c9a.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-3ed4cbc5d9407c9a.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

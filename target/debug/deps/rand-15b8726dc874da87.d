/root/repo/target/debug/deps/rand-15b8726dc874da87.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-15b8726dc874da87.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

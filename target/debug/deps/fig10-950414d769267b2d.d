/root/repo/target/debug/deps/fig10-950414d769267b2d.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-950414d769267b2d.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

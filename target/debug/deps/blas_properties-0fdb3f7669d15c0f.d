/root/repo/target/debug/deps/blas_properties-0fdb3f7669d15c0f.d: crates/field/tests/blas_properties.rs Cargo.toml

/root/repo/target/debug/deps/libblas_properties-0fdb3f7669d15c0f.rmeta: crates/field/tests/blas_properties.rs Cargo.toml

crates/field/tests/blas_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/rand-579cd832ee45c3b4.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-579cd832ee45c3b4.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig8-c34dfec77d0dfdc1.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-c34dfec77d0dfdc1.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/distributed-e984a44353c0ce4b.d: crates/dirac/tests/distributed.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed-e984a44353c0ce4b.rmeta: crates/dirac/tests/distributed.rs Cargo.toml

crates/dirac/tests/distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

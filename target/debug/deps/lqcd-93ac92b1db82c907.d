/root/repo/target/debug/deps/lqcd-93ac92b1db82c907.d: src/lib.rs

/root/repo/target/debug/deps/liblqcd-93ac92b1db82c907.rlib: src/lib.rs

/root/repo/target/debug/deps/liblqcd-93ac92b1db82c907.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/rand_chacha-acfa713f8c6edb1f.d: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-acfa713f8c6edb1f.rlib: shims/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-acfa713f8c6edb1f.rmeta: shims/rand_chacha/src/lib.rs

shims/rand_chacha/src/lib.rs:

/root/repo/target/debug/deps/lqcd_su3-08f51ca9296af2e7.d: crates/su3/src/lib.rs crates/su3/src/clover.rs crates/su3/src/compress.rs crates/su3/src/gamma.rs crates/su3/src/matrix.rs crates/su3/src/spinor.rs crates/su3/src/vector.rs

/root/repo/target/debug/deps/liblqcd_su3-08f51ca9296af2e7.rlib: crates/su3/src/lib.rs crates/su3/src/clover.rs crates/su3/src/compress.rs crates/su3/src/gamma.rs crates/su3/src/matrix.rs crates/su3/src/spinor.rs crates/su3/src/vector.rs

/root/repo/target/debug/deps/liblqcd_su3-08f51ca9296af2e7.rmeta: crates/su3/src/lib.rs crates/su3/src/clover.rs crates/su3/src/compress.rs crates/su3/src/gamma.rs crates/su3/src/matrix.rs crates/su3/src/spinor.rs crates/su3/src/vector.rs

crates/su3/src/lib.rs:
crates/su3/src/clover.rs:
crates/su3/src/compress.rs:
crates/su3/src/gamma.rs:
crates/su3/src/matrix.rs:
crates/su3/src/spinor.rs:
crates/su3/src/vector.rs:

/root/repo/target/debug/deps/lqcd-c8e9f638167ef944.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd-c8e9f638167ef944.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

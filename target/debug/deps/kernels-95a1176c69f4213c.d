/root/repo/target/debug/deps/kernels-95a1176c69f4213c.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-95a1176c69f4213c.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_perf-26813c95d6076653.d: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_perf-26813c95d6076653.rmeta: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs Cargo.toml

crates/perf/src/lib.rs:
crates/perf/src/capability.rs:
crates/perf/src/cost.rs:
crates/perf/src/model.rs:
crates/perf/src/solver_model.rs:
crates/perf/src/streams.rs:
crates/perf/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

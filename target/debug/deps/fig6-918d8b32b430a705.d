/root/repo/target/debug/deps/fig6-918d8b32b430a705.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-918d8b32b430a705.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_field-04d985472c6dcf40.d: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_field-04d985472c6dcf40.rmeta: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs Cargo.toml

crates/field/src/lib.rs:
crates/field/src/blas.rs:
crates/field/src/field.rs:
crates/field/src/half.rs:
crates/field/src/layout.rs:
crates/field/src/site.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/figures_regression-9d7a152dd1180a6f.d: tests/figures_regression.rs

/root/repo/target/debug/deps/figures_regression-9d7a152dd1180a6f: tests/figures_regression.rs

tests/figures_regression.rs:

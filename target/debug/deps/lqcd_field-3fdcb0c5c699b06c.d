/root/repo/target/debug/deps/lqcd_field-3fdcb0c5c699b06c.d: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

/root/repo/target/debug/deps/liblqcd_field-3fdcb0c5c699b06c.rlib: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

/root/repo/target/debug/deps/liblqcd_field-3fdcb0c5c699b06c.rmeta: crates/field/src/lib.rs crates/field/src/blas.rs crates/field/src/field.rs crates/field/src/half.rs crates/field/src/layout.rs crates/field/src/site.rs

crates/field/src/lib.rs:
crates/field/src/blas.rs:
crates/field/src/field.rs:
crates/field/src/half.rs:
crates/field/src/layout.rs:
crates/field/src/site.rs:

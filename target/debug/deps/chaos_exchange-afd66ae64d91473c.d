/root/repo/target/debug/deps/chaos_exchange-afd66ae64d91473c.d: crates/dirac/tests/chaos_exchange.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_exchange-afd66ae64d91473c.rmeta: crates/dirac/tests/chaos_exchange.rs Cargo.toml

crates/dirac/tests/chaos_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_util-39058f688d928d84.d: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_util-39058f688d928d84.rmeta: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/complex.rs:
crates/util/src/error.rs:
crates/util/src/half.rs:
crates/util/src/real.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablations-32a733ba604d1577.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-32a733ba604d1577.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/serde-90332dcd6a76229d.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-90332dcd6a76229d.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

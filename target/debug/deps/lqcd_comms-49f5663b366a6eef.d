/root/repo/target/debug/deps/lqcd_comms-49f5663b366a6eef.d: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

/root/repo/target/debug/deps/liblqcd_comms-49f5663b366a6eef.rlib: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

/root/repo/target/debug/deps/liblqcd_comms-49f5663b366a6eef.rmeta: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

crates/comms/src/lib.rs:
crates/comms/src/comm.rs:
crates/comms/src/faulty.rs:
crates/comms/src/single.rs:
crates/comms/src/threaded.rs:

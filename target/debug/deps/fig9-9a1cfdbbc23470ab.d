/root/repo/target/debug/deps/fig9-9a1cfdbbc23470ab.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-9a1cfdbbc23470ab.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lqcd_gauge-86a93f411932c8fa.d: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_gauge-86a93f411932c8fa.rmeta: crates/gauge/src/lib.rs crates/gauge/src/asqtad.rs crates/gauge/src/clover_build.rs crates/gauge/src/field.rs crates/gauge/src/heatbath.rs crates/gauge/src/hmc.rs crates/gauge/src/io.rs crates/gauge/src/paths.rs crates/gauge/src/plaquette.rs Cargo.toml

crates/gauge/src/lib.rs:
crates/gauge/src/asqtad.rs:
crates/gauge/src/clover_build.rs:
crates/gauge/src/field.rs:
crates/gauge/src/heatbath.rs:
crates/gauge/src/hmc.rs:
crates/gauge/src/io.rs:
crates/gauge/src/paths.rs:
crates/gauge/src/plaquette.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

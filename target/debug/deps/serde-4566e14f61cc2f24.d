/root/repo/target/debug/deps/serde-4566e14f61cc2f24.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4566e14f61cc2f24.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4566e14f61cc2f24.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:

/root/repo/target/debug/deps/lqcd_comms-40dc3420cd914874.d: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

/root/repo/target/debug/deps/lqcd_comms-40dc3420cd914874: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs

crates/comms/src/lib.rs:
crates/comms/src/comm.rs:
crates/comms/src/faulty.rs:
crates/comms/src/single.rs:
crates/comms/src/threaded.rs:

/root/repo/target/debug/deps/lqcd_comms-759cff4d25a4fa6d.d: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_comms-759cff4d25a4fa6d.rmeta: crates/comms/src/lib.rs crates/comms/src/comm.rs crates/comms/src/faulty.rs crates/comms/src/single.rs crates/comms/src/threaded.rs Cargo.toml

crates/comms/src/lib.rs:
crates/comms/src/comm.rs:
crates/comms/src/faulty.rs:
crates/comms/src/single.rs:
crates/comms/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-3416ac5984c50f33.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3416ac5984c50f33.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3416ac5984c50f33.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:

/root/repo/target/debug/deps/lqcd_core-61ec3792764352b7.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

/root/repo/target/debug/deps/liblqcd_core-61ec3792764352b7.rlib: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

/root/repo/target/debug/deps/liblqcd_core-61ec3792764352b7.rmeta: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/drivers.rs:
crates/core/src/ensemble.rs:
crates/core/src/observables.rs:
crates/core/src/problem.rs:

/root/repo/target/debug/deps/lqcd_lattice-6427692c703744b5.d: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

/root/repo/target/debug/deps/liblqcd_lattice-6427692c703744b5.rlib: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

/root/repo/target/debug/deps/liblqcd_lattice-6427692c703744b5.rmeta: crates/lattice/src/lib.rs crates/lattice/src/dims.rs crates/lattice/src/face.rs crates/lattice/src/grid.rs crates/lattice/src/local.rs

crates/lattice/src/lib.rs:
crates/lattice/src/dims.rs:
crates/lattice/src/face.rs:
crates/lattice/src/grid.rs:
crates/lattice/src/local.rs:

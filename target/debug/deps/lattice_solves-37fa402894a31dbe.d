/root/repo/target/debug/deps/lattice_solves-37fa402894a31dbe.d: crates/solvers/tests/lattice_solves.rs Cargo.toml

/root/repo/target/debug/deps/liblattice_solves-37fa402894a31dbe.rmeta: crates/solvers/tests/lattice_solves.rs Cargo.toml

crates/solvers/tests/lattice_solves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

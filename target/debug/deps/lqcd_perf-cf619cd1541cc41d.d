/root/repo/target/debug/deps/lqcd_perf-cf619cd1541cc41d.d: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

/root/repo/target/debug/deps/liblqcd_perf-cf619cd1541cc41d.rlib: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

/root/repo/target/debug/deps/liblqcd_perf-cf619cd1541cc41d.rmeta: crates/perf/src/lib.rs crates/perf/src/capability.rs crates/perf/src/cost.rs crates/perf/src/model.rs crates/perf/src/solver_model.rs crates/perf/src/streams.rs crates/perf/src/sweep.rs

crates/perf/src/lib.rs:
crates/perf/src/capability.rs:
crates/perf/src/cost.rs:
crates/perf/src/model.rs:
crates/perf/src/solver_model.rs:
crates/perf/src/streams.rs:
crates/perf/src/sweep.rs:

/root/repo/target/debug/deps/lqcd_util-e06b6eb24c922158.d: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/debug/deps/liblqcd_util-e06b6eb24c922158.rlib: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

/root/repo/target/debug/deps/liblqcd_util-e06b6eb24c922158.rmeta: crates/util/src/lib.rs crates/util/src/complex.rs crates/util/src/error.rs crates/util/src/half.rs crates/util/src/real.rs crates/util/src/rng.rs crates/util/src/stats.rs

crates/util/src/lib.rs:
crates/util/src/complex.rs:
crates/util/src/error.rs:
crates/util/src/half.rs:
crates/util/src/real.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:

/root/repo/target/debug/deps/fig6-dfa348d1651aa460.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-dfa348d1651aa460.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

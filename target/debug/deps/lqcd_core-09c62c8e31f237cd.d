/root/repo/target/debug/deps/lqcd_core-09c62c8e31f237cd.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs Cargo.toml

/root/repo/target/debug/deps/liblqcd_core-09c62c8e31f237cd.rmeta: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/drivers.rs crates/core/src/ensemble.rs crates/core/src/observables.rs crates/core/src/problem.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/drivers.rs:
crates/core/src/ensemble.rs:
crates/core/src/observables.rs:
crates/core/src/problem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

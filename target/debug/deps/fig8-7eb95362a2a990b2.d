/root/repo/target/debug/deps/fig8-7eb95362a2a990b2.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-7eb95362a2a990b2.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-7342bc91f14154ec.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-7342bc91f14154ec.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

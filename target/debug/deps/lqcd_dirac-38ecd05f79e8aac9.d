/root/repo/target/debug/deps/lqcd_dirac-38ecd05f79e8aac9.d: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

/root/repo/target/debug/deps/liblqcd_dirac-38ecd05f79e8aac9.rlib: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

/root/repo/target/debug/deps/liblqcd_dirac-38ecd05f79e8aac9.rmeta: crates/dirac/src/lib.rs crates/dirac/src/exchange.rs crates/dirac/src/reference.rs crates/dirac/src/staggered.rs crates/dirac/src/wilson.rs

crates/dirac/src/lib.rs:
crates/dirac/src/exchange.rs:
crates/dirac/src/reference.rs:
crates/dirac/src/staggered.rs:
crates/dirac/src/wilson.rs:

/root/repo/target/debug/deps/serde-88a57442f938b6e3.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-88a57442f938b6e3.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR

//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, ..) { .. } }`
//! macro with range strategies over integers and floats, plus
//! `proptest::collection::vec`, `prop_assert!` and `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! * sampling is purely random (seeded deterministically from the test
//!   name), with no shrinking — a failing case prints its concrete
//!   arguments instead, which is enough to reproduce since the stream
//!   is fixed;
//! * no persistence of failing seeds (`proptest-regressions/`).
//!
//! See `shims/README.md` for why this shim exists.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases (the knob every call site in this
    /// workspace uses).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep that so unannotated
        // properties get comparable coverage.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name so every property has its own fixed,
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Modulo bias is irrelevant at test-range widths.
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` with element strategy `S` and a length
    /// drawn from `lens`.
    pub struct VecStrategy<S> {
        element: S,
        lens: std::ops::Range<usize>,
    }

    /// A `Vec` of `lens`-many draws from `element`.
    pub fn vec<S: Strategy>(element: S, lens: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lens }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.lens.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Prints the failing case's arguments if the property body panics.
pub struct CaseGuard {
    case: u32,
    desc: String,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for case number `case` with pre-rendered arguments.
    pub fn new(case: u32, desc: String) -> Self {
        CaseGuard { case, desc, armed: true }
    }

    /// The case passed; do not report on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("[proptest] failing case {}: {}", self.case, self.desc);
        }
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
}

/// Declare property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a normal `#[test]` running `cases` sampled instances.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let mut __desc = String::new();
                $(
                    __desc.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));
                )+
                let __guard = $crate::CaseGuard::new(__case, __desc);
                $body
                __guard.disarm();
            }
        }
    )*};
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let x = (-5isize..7).sample(&mut rng);
            assert!((-5..7).contains(&x));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..100 {
            let v = collection::vec(0u32..9, 1..64).sample(&mut rng);
            assert!((1..64).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 9));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn shim_macro_self_test(a in 0u64..100, b in -1.0f64..1.0) {
            prop_assert!(a < 100);
            prop_assert!((-1.0..1.0).contains(&b), "b out of range: {b}");
            prop_assert_eq!(a, a);
        }
    }
}

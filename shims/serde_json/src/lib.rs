//! Offline shim for the subset of `serde_json` this workspace uses:
//! pretty-printed serialization of artifact structs. Built on the serde
//! shim's direct JSON-writing [`serde::Serialize`] contract. See
//! `shims/README.md`.

use std::fmt;

/// Serialization error. The shim's serializer is infallible, so this is
/// never constructed; it exists to keep `serde_json::Error` call sites
/// (`Result` plumbing, `.expect(..)`) compiling unchanged.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as pretty-printed JSON (two-space indent, `": "`
/// after keys — the same layout serde_json produces).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out, 0);
    Ok(out)
}

/// Serialize `value` as compact JSON. The shim emits the pretty form and
/// strips the layout whitespace, which is equivalent for the artifact
/// structs this workspace serializes (no string fields contain newlines;
/// escaped `\n` sequences are untouched).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    let mut out = String::with_capacity(pretty.len());
    for line in pretty.lines() {
        out.push_str(line.trim_start());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair {
        x: u64,
        label: String,
    }

    impl serde::Serialize for Pair {
        fn write_json(&self, out: &mut String, indent: usize) {
            serde::write_object(&[("x", &self.x), ("label", &self.label)], out, indent);
        }
    }

    #[test]
    fn pretty_uses_colon_space_and_indent() {
        let p = Pair { x: 7, label: "run".into() };
        let s = to_string_pretty(&p).unwrap();
        assert!(s.contains("\"x\": 7"), "{s}");
        assert!(s.contains("\n  \"label\": \"run\""), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn compact_strips_layout() {
        let p = Pair { x: 7, label: "run".into() };
        let s = to_string(&p).unwrap();
        assert_eq!(s, "{\"x\": 7,\"label\": \"run\"}");
    }
}

//! Offline shim for the subset of `serde_json` this workspace uses:
//! pretty-printed serialization of artifact structs (built on the serde
//! shim's direct JSON-writing [`serde::Serialize`] contract) and a
//! small recursive-descent parser into a dynamic [`Value`] — enough to
//! round-trip and validate the JSON this workspace itself produces
//! (bench artifacts, Chrome trace exports). See `shims/README.md`.

use std::collections::BTreeMap;
use std::fmt;

/// Serialization/parse error. Serialization through the shim is
/// infallible; parsing reports the failure as a message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            f.write_str("serde_json shim error")
        } else {
            write!(f, "serde_json shim error: {}", self.0)
        }
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as pretty-printed JSON (two-space indent, `": "`
/// after keys — the same layout serde_json produces).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out, 0);
    Ok(out)
}

/// Serialize `value` as compact JSON. The shim emits the pretty form and
/// strips the layout whitespace, which is equivalent for the artifact
/// structs this workspace serializes (no string fields contain newlines;
/// escaped `\n` sequences are untouched).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    let mut out = String::with_capacity(pretty.len());
    for line in pretty.lines() {
        out.push_str(line.trim_start());
    }
    Ok(out)
}

/// A parsed JSON value. Object keys are kept in a `BTreeMap` (sorted,
/// duplicates keep the last value), matching what validation and
/// assertion call sites need.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access: `v.get("key")` on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64` if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `i64` if this is a `Number` with an integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// The element vector if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key map if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a JSON document into a [`Value`]. Strict where it matters for
/// validation: rejects trailing garbage, unterminated strings/brackets,
/// and malformed numbers.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in this
                            // workspace's output; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::msg(format!("invalid number {s:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair {
        x: u64,
        label: String,
    }

    impl serde::Serialize for Pair {
        fn write_json(&self, out: &mut String, indent: usize) {
            serde::write_object(&[("x", &self.x), ("label", &self.label)], out, indent);
        }
    }

    #[test]
    fn pretty_uses_colon_space_and_indent() {
        let p = Pair { x: 7, label: "run".into() };
        let s = to_string_pretty(&p).unwrap();
        assert!(s.contains("\"x\": 7"), "{s}");
        assert!(s.contains("\n  \"label\": \"run\""), "{s}");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn compact_strips_layout() {
        let p = Pair { x: 7, label: "run".into() };
        let s = to_string(&p).unwrap();
        assert_eq!(s, "{\"x\": 7,\"label\": \"run\"}");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let p = Pair { x: 7, label: "run".into() };
        let v = from_str(&to_string_pretty(&p).unwrap()).unwrap();
        assert_eq!(v.get("x").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("label").and_then(Value::as_str), Some("run"));
    }

    #[test]
    fn parse_nested_document() {
        let v = from_str(
            r#"{"traceEvents": [{"ph": "B", "ts": 1.5, "ok": true}, {"ph": "E", "args": null}],
               "neg": -3e2, "text": "a\"b\\c\ndA"}"#,
        )
        .unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("B"));
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(events[0].get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(events[1].get("args"), Some(&Value::Null));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-300.0));
        assert_eq!(v.get("text").and_then(Value::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in
            ["{", "[1, 2", "\"unterminated", "{\"a\" 1}", "tru", "1 2", "{1: 2}", "{\"a\": 1,}"]
        {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_as_expected() {
        assert_eq!(from_str("42").unwrap().as_i64(), Some(42));
        assert_eq!(from_str("-0.5").unwrap().as_f64(), Some(-0.5));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(from_str("0.5").unwrap().as_i64(), None);
    }
}

//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Provides [`Serialize`] (with a direct JSON-writing contract consumed
//! by the `serde_json` shim) and [`Deserialize`] (a marker — nothing in
//! the workspace deserializes), plus `#[derive(Serialize, Deserialize)]`
//! via the sibling `serde_derive` shim. See `shims/README.md` for
//! the rationale (no network access to crates.io in the build image).

pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
///
/// Unlike real serde there is no data-model indirection: the only
/// consumer in this workspace is JSON artifact output, so the contract
/// *is* JSON. `indent` is the current pretty-printing depth.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String, indent: usize);
}

/// Marker for deserializable types (unused at runtime; keeps
/// `#[derive(Deserialize)]` and `use serde::Deserialize` compiling).
pub trait Deserialize<'de>: Sized {}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _indent: usize) {
                if self.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a decimal point or
                    // exponent — valid JSON for finite values.
                    out.push_str(&format!("{self:?}"));
                } else {
                    // JSON has no NaN/inf; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String, _indent: usize) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

/// Escape and quote a string per JSON.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_str().write_json(out, indent);
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(&self.to_string(), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String, indent: usize) {
        (**self).write_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.write_json(out, indent),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_slice().write_json(out, indent);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_slice().write_json(out, indent);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String, indent: usize) {
        write_seq(self.iter(), out, indent);
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String, indent: usize) {
                let items: &[&dyn Serialize] = &[$(&self.$idx),+];
                write_seq(items.iter().copied(), out, indent);
            }
        }
    )+};
}

tuple_impls!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Write an iterator of serializable items as a pretty JSON array.
pub fn write_seq<'a, T>(items: impl Iterator<Item = &'a T>, out: &mut String, indent: usize)
where
    T: Serialize + ?Sized + 'a,
{
    let mut any = false;
    out.push('[');
    for item in items {
        if any {
            out.push(',');
        }
        any = true;
        out.push('\n');
        pad(out, indent + 1);
        item.write_json(out, indent + 1);
    }
    if any {
        out.push('\n');
        pad(out, indent);
    }
    out.push(']');
}

/// Write a field list as a pretty JSON object (used by derived impls).
pub fn write_object(fields: &[(&str, &dyn Serialize)], out: &mut String, indent: usize) {
    out.push('{');
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        pad(out, indent + 1);
        write_json_string(name, out);
        out.push_str(": ");
        value.write_json(out, indent + 1);
    }
    if !fields.is_empty() {
        out.push('\n');
        pad(out, indent);
    }
    out.push('}');
}

/// Write a tuple-struct body (used by derived impls): a 1-tuple unwraps
/// to its inner value (matching serde's newtype-struct behaviour), larger
/// tuples become arrays.
pub fn write_tuple_struct(fields: &[&dyn Serialize], out: &mut String, indent: usize) {
    match fields {
        [single] => single.write_json(out, indent),
        many => write_seq(many.iter().copied(), out, indent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        let mut s = String::new();
        (1u32, -2.5f64, "hi\"", true).write_json(&mut s, 0);
        assert!(s.contains("-2.5") && s.contains("\\\"") && s.contains("true"));

        let mut s = String::new();
        Option::<u8>::None.write_json(&mut s, 0);
        assert_eq!(s, "null");

        let mut s = String::new();
        f64::NAN.write_json(&mut s, 0);
        assert_eq!(s, "null");

        let mut s = String::new();
        vec![1u8, 2, 3].write_json(&mut s, 0);
        assert_eq!(s.split_whitespace().collect::<String>(), "[1,2,3]");
    }

    #[test]
    fn objects_nest_with_indentation() {
        let mut s = String::new();
        write_object(&[("a", &1u8), ("b", &[4u8, 5])], &mut s, 0);
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"b\": ["));
    }
}

//! Offline shim for `serde_derive`.
//!
//! Real `serde_derive` pulls in `syn`/`quote`, which are unavailable in
//! this no-network build image, so the derives here parse the input
//! token stream by hand. They support exactly the shapes this workspace
//! serializes — named-field structs, tuple structs, and unit-variant
//! enums, all non-generic, with no `#[serde(...)]` attributes — and
//! fail loudly on anything else. See `shims/README.md`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    /// Named-field struct, with the field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    /// Enum of unit variants, with the variant names.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Advance past outer attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`), returning the index of the next real token.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma. Nested generics
        // and arrays are single `Group` token trees, so a bare `,` here
        // really is a field separator.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut count = 0;
    let mut in_segment = false;
    for tok in group.stream() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if in_segment {
                    count += 1;
                }
                in_segment = false;
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_unit_variants(item: &str, group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        variants.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde_derive shim: enum {item} variant {} is not a unit \
                 variant (found `{other}`); only unit-variant enums are \
                 supported",
                variants.last().unwrap()
            ),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, kind: ItemKind::Struct(parse_named_fields(g)) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item { name, kind: ItemKind::TupleStruct(count_tuple_fields(g)) }
            }
            _ => panic!("serde_derive shim: unit struct `{name}` is not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name: name.clone(), kind: ItemKind::Enum(parse_unit_variants(&name, g)) }
            }
            _ => panic!("serde_derive shim: malformed enum `{name}`"),
        },
        kw => panic!("serde_derive shim: cannot derive for `{kw} {name}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let list = fields
                .iter()
                .map(|f| format!("(\"{f}\", &self.{f} as &dyn serde::Serialize)"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("serde::write_object(&[{list}], out, indent);")
        }
        ItemKind::TupleStruct(n) => {
            let list = (0..*n)
                .map(|i| format!("&self.{i} as &dyn serde::Serialize"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("serde::write_tuple_struct(&[{list}], out, indent);")
        }
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect::<Vec<_>>()
                .join(" ");
            format!(
                "let _ = indent; \
                 let variant = match self {{ {arms} }}; \
                 serde::write_json_string(variant, out);"
            )
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut String, indent: usize) {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}

//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible stand-ins for its external
//! dependencies (see `shims/README.md`). This crate provides:
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`;
//! * [`Rng`] — the `gen::<T>()` convenience (blanket-implemented for
//!   every `RngCore`), for the float/integer types the workspace draws;
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`, with the same
//!   SplitMix64 seed-expansion rule rand 0.8 documents.
//!
//! Determinism contract: everything in the workspace that consumes
//! randomness is keyed through `lqcd-util`'s `SeedTree`, so streams only
//! need to be *self*-consistent (identical across runs and rank counts),
//! not bit-identical to upstream `rand`.

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types drawable from the "standard" distribution: uniform over the
/// type's natural unit range (floats in `[0, 1)`) or full bit range
/// (integers).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, exactly rand 0.8's `Standard` for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `[low, high)` (f64 only; the workspace does not
    /// use integer ranges).
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        range.start + (range.end - range.start) * self.gen::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size seed or a single `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// scheme rand 0.8 documents for `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut t = z;
            t = (t ^ (t >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            t = (t ^ (t >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            t ^= t >> 31;
            let bytes = t.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Counter(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

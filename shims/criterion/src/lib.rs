//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides the same surface API (`Criterion`, `benchmark_group`,
//! `bench_function`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!`) over a deliberately simple harness: per bench, a
//! short warmup followed by `sample_size` timed samples, reporting the
//! median per-iteration wall time (and derived throughput). No
//! statistical analysis, outlier detection, or HTML reports. Passing
//! `--test` (as `cargo test --benches` does) runs each closure once.
//! See `shims/README.md`.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for reporting derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 100, test_mode }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group(name);
        g.bench_function("bench", f);
        g.finish();
        self
    }

    /// Final-summary hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declare per-iteration work so the report includes throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        if self.criterion.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("{label:<40} ... test mode ok");
            return self;
        }
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);

        // Warmup + calibration: find an iteration count that takes
        // roughly 10ms per sample, capped so total time stays bounded.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000);

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher { iters: iters as u64, elapsed: Duration::ZERO };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let mut line = format!("{label:<40} {:>12}/iter", fmt_time(median));
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                line.push_str(&format!("  {:.3e} elem/s", n as f64 / median));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!("  {:.3} GiB/s", n as f64 / median / (1u64 << 30) as f64));
            }
            None => {}
        }
        println!("{line}");
        self
    }

    /// Close the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to each benchmark closure; times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declare a group of benchmark entry points.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        // Force test mode so the unit test stays fast.
        let mut c = Criterion { sample_size: 3, test_mode: true };
        quick_bench(&mut c);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}

//! Offline shim for `rand_chacha`: a genuine ChaCha8 keystream generator
//! exposed under the [`ChaCha8Rng`] name.
//!
//! This is a faithful ChaCha implementation (16-word state, the RFC 8439
//! quarter-round, 8 double-rounds), seeded with a 256-bit key and a
//! 64-bit block counter. Output is the keystream read out word by word —
//! a high-quality, splittable, reproducible PRNG. It is *not* promised to
//! be bit-identical to upstream `rand_chacha` (the workspace only needs
//! self-consistency; see `shims/README.md`).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words 14/15 stay zero (single-stream use).
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(initial) {
            *o = o.wrapping_add(i);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_words_look_uniform() {
        // Crude sanity: bit balance of 4096 words within 2% of half.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..4096).map(|_| r.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }

    #[test]
    fn chacha_quarter_round_rfc_vector() {
        // RFC 8439 §2.1.1 test vector.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }
}

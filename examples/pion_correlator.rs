//! The analysis-phase payoff: compute the staggered (Goldstone) pion
//! two-point function from a point-source propagator, distributed over a
//! virtual 2-GPU cluster, and print the correlator with its effective
//! mass — the kind of physics the paper's capacity solves feed (§2).
//!
//! ```sh
//! cargo run --release --example pion_correlator
//! ```

use lqcd::core::observables::{effective_mass, pion_from_problem};
use lqcd::prelude::*;

fn main() -> Result<()> {
    let mut problem = StaggeredProblem::small();
    problem.global = Dims([4, 4, 4, 16]);
    problem.mass = 0.5;
    problem.disorder = 0.15;
    problem.tol = 1e-9;
    println!(
        "staggered pion correlator on {} (m = {}, disorder {})",
        problem.global, problem.mass, problem.disorder
    );

    // Distribute the solve over two ranks in T.
    let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), problem.global)?;
    let grid2 = grid.clone();
    let p2 = problem.clone();
    let results = run_on_grid(grid, move |comm| pion_from_problem(&p2, &grid2, comm));
    let (corr, stats) = results.into_iter().next().expect("rank 0")?;
    println!("propagator solve: {} CG iterations\n", stats.iterations);

    let meff = effective_mass(&corr);
    println!("{:>4} {:>14} {:>10}", "t", "C(t)", "m_eff");
    let half = corr.len() / 2;
    for (t, c) in corr.iter().enumerate() {
        let m = if t < meff.len() && t < half {
            format!("{:>10.4}", meff[t])
        } else {
            "         -".into()
        };
        let bar_len = (12.0 + (c / corr[0]).log10() * 4.0).max(0.0) as usize;
        println!("{:>4} {:>14.6e} {} {}", t, c, m, "#".repeat(bar_len));
    }
    println!("\nplateau effective mass (t = 3..6): {:.4}", meff[3..6].iter().sum::<f64>() / 3.0);
    Ok(())
}

//! Quenched gauge-field generation — the paper's "configuration
//! generation" phase (§2) end to end: equilibrate with the
//! Cabibbo–Marinari heatbath (+ microcanonical overrelaxation), evolve
//! with HMC using the gauge force (§5 lists force terms among QUDA's
//! kernels), checkpoint the configuration to disk, reload it, and feed it
//! to the Wilson-clover solver.
//!
//! ```sh
//! cargo run --release --example gauge_generation
//! ```

use lqcd::gauge::clover_build::build_clover_field;
use lqcd::gauge::field::GaugeStart;
use lqcd::gauge::heatbath::{heatbath_sweep, overrelax_sweep};
use lqcd::gauge::hmc::hmc_trajectory;
use lqcd::gauge::io;
use lqcd::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    let global = Dims([4, 4, 4, 8]);
    let sub = Arc::new(SubLattice::single(global)?);
    let faces = lqcd::lattice::FaceGeometry::new(&sub, 1)?;
    let seeds = SeedTree::new(42);

    println!("quenched SU(3) heatbath on {global}");
    println!("{:>6} {:>12} {:>14}", "β", "plaquette", "(strong-coupl.)");
    for beta in [0.9, 2.0, 5.7, 12.0] {
        let mut g =
            GaugeField::<f64>::generate(sub.clone(), &faces, global, &seeds, GaugeStart::Hot);
        for sweep in 0..10 {
            heatbath_sweep(&mut g, global, beta, &seeds, sweep);
        }
        let p = average_plaquette(&g, global);
        let strong = beta / 18.0;
        println!("{:>6.2} {:>12.4} {:>14.4}", beta, p, strong);
    }

    // Equilibrate a β = 5.7 ensemble with heatbath + overrelaxation, then
    // continue the Markov chain with HMC (the force-based evolution the
    // gauge-generation phase uses in production).
    let mut g = GaugeField::<f64>::generate(sub.clone(), &faces, global, &seeds, GaugeStart::Hot);
    for sweep in 0..10 {
        heatbath_sweep(&mut g, global, 5.7, &seeds, sweep);
        overrelax_sweep(&mut g, global);
    }
    println!("\nHMC continuation at β = 5.7 (ε = 0.01, 30 steps):");
    let mut accepted = 0;
    for traj in 0..4 {
        let t = hmc_trajectory(&mut g, global, 5.7, 0.01, 30, &seeds, traj);
        if t.accepted {
            accepted += 1;
        }
        println!(
            "  trajectory {traj}: ΔH = {:+.4}, {}, plaquette {:.4}",
            t.delta_h,
            if t.accepted { "accepted" } else { "rejected" },
            t.plaquette
        );
    }
    println!("  acceptance {accepted}/4");

    // Checkpoint and reload (the generation → analysis handoff).
    let path = std::env::temp_dir().join("lqcd_example_config.lqcd");
    io::save(&g, global, &path)?;
    let (g, _) = io::load(&path, 1)?;
    println!("\ncheckpointed to {} and reloaded (checksum + plaquette verified)", path.display());

    let clover = build_clover_field(&g, global, 1.0);
    let mut op = WilsonCloverOp::new(g, Some(clover), 0.3)?;
    op.build_t_inverse()?;

    // Solve a point source on it.
    let mut comm = SingleComm::new(global)?;
    let mut space = lqcd::solvers::spaces::EoWilsonSpace::new(op, comm_take(&mut comm))?;
    let mut b = space.alloc();
    let mut point = WilsonSpinor::zero();
    point.s[0].c[0] = Complex::one();
    b.set_site(0, point);
    let mut x = space.alloc();
    let stats = bicgstab(&mut space, &mut x, &b, 1e-8, 4000)?;
    println!(
        "\nWilson-clover point-source solve on the β=5.7 configuration: {} iterations, |r|/|b| = {:.1e}",
        stats.iterations, stats.residual
    );
    Ok(())
}

// Tiny helper: SingleComm is Clone, take a fresh copy.
fn comm_take(c: &mut SingleComm) -> SingleComm {
    c.clone()
}

//! Strong-scaling survey on the simulated Edge cluster: regenerates the
//! flavor of every scaling figure at the command line.
//!
//! ```sh
//! cargo run --release --example strong_scaling
//! ```

use lqcd::perf::solver_model::{StaggeredIterModel, WilsonIterModel};
use lqcd::perf::sweep;
use lqcd::prelude::*;

fn main() -> Result<()> {
    let model = edge();
    println!("cluster model: {}\n", model.name);

    println!("── Fig. 5 — Wilson-clover dslash, V = 32³×256, 12-recon ──");
    println!("{:>6} {:>6} {:>14} {:>14}", "GPUs", "prec", "Gflops/GPU", "total Tflops");
    for p in sweep::fig5(&model)? {
        println!(
            "{:>6} {:>6} {:>14.1} {:>14.2}",
            p.gpus, p.precision, p.gflops_per_gpu, p.total_tflops
        );
    }

    println!("\n── Fig. 6 — asqtad dslash, V = 64³×192, by partitioning ──");
    println!("{:>6} {:>6} {:>6} {:>14}", "GPUs", "dims", "prec", "Gflops/GPU");
    for p in sweep::fig6(&model)? {
        println!("{:>6} {:>6} {:>6} {:>14.1}", p.gpus, p.scheme, p.precision, p.gflops_per_gpu);
    }

    println!("\n── Figs. 7/8 — BiCGstab vs GCR-DD, V = 32³×256 ──");
    println!("{:>6} {:>10} {:>10} {:>10} {:>8}", "GPUs", "solver", "Tflops", "TTS (s)", "iters");
    let im = WilsonIterModel::default();
    for p in sweep::fig7_fig8(&model, &im)? {
        println!(
            "{:>6} {:>10} {:>10.2} {:>10.2} {:>8.0}",
            p.gpus, p.solver, p.tflops, p.time_to_solution, p.iterations
        );
    }

    println!("\n── Fig. 9 — capability-machine context (same volume) ──");
    println!("{:>8} {:>16} {:>10}", "cores", "machine", "Tflops");
    for p in sweep::fig9() {
        println!("{:>8} {:>16} {:>10.2}", p.cores, p.machine, p.tflops);
    }

    println!("\n── Fig. 10 — asqtad multi-shift solver, V = 64³×192 ──");
    println!("{:>6} {:>6} {:>14}", "GPUs", "dims", "total Tflops");
    let sm = StaggeredIterModel::default();
    for p in sweep::fig10(&model, &sm)? {
        println!("{:>6} {:>6} {:>14.2}", p.gpus, p.scheme, p.total_tflops);
    }
    Ok(())
}

//! The analysis-phase workload: one staggered multi-shift solve producing
//! quark propagators at several masses from a single Krylov pass
//! (paper §3.1, Eq. 4) — then the same solves done sequentially, to show
//! the economy.
//!
//! ```sh
//! cargo run --release --example multishift_spectrum
//! ```

use lqcd::core::calibration::measure_multishift_economy;
use lqcd::prelude::*;

fn main() -> Result<()> {
    let mut problem = StaggeredProblem::small();
    problem.shifts = vec![0.0, 0.05, 0.2, 0.8, 3.2];
    println!(
        "asqtad multi-shift on {}: m = {}, shifts {:?}",
        problem.global, problem.mass, problem.shifts
    );

    // Distributed solve over a 2×2 (Z,T) grid.
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), problem.global)?;
    let out = run_staggered_multishift(&problem, grid)?;
    let o = &out[0];
    println!(
        "\nsolved {} shifted systems in {} shared matvecs ({} iterations)",
        problem.shifts.len(),
        o.stats.matvecs,
        o.stats.iterations
    );
    println!("{:>10} {:>14} {:>16}", "shift", "‖x_σ‖²", "converged@iter");
    for (i, &sigma) in problem.shifts.iter().enumerate() {
        println!("{:>10.3} {:>14.4} {:>16}", sigma, o.solution_norms[i], o.converged_at[i]);
    }

    // Compare matvec economy against per-shift sequential CG (serial, so
    // the counts are directly comparable).
    let econ = measure_multishift_economy(&problem)?;
    println!(
        "\nmatvec economy: multi-shift {} vs sequential {} ({:.1}× saved)",
        econ.multishift_matvecs,
        econ.sequential_matvecs,
        econ.sequential_matvecs as f64 / econ.multishift_matvecs as f64
    );
    Ok(())
}

//! Fault-tolerant solve demo: a distributed Wilson GCR-DD solve under a
//! deterministic fault plan — dropped messages absorbed by the ARQ
//! layer, a corrupted reduction kicking the half-precision attempt up
//! the fallback ladder — plus a rank death showing the structured
//! unwind. See DESIGN.md, "Fault model & recovery".

use lqcd::prelude::*;
use std::time::{Duration, Instant};

fn report(label: &str, outcomes: &[Result<lqcd::core::WilsonSolveOutcome>], elapsed: Duration) {
    println!("\n── {label} ({elapsed:.2?}) ──");
    for (rank, r) in outcomes.iter().enumerate() {
        match r {
            Ok(out) => println!(
                "  rank {rank}: converged={} iters={} residual={:.2e} fallbacks={} retries={} faults={}",
                out.stats.converged,
                out.stats.iterations,
                out.stats.residual,
                out.stats.precision_fallbacks,
                out.stats.exchange_retries,
                out.stats.faults_survived,
            ),
            Err(e) => println!("  rank {rank}: ERROR {e}"),
        }
    }
}

fn main() {
    let mut problem = WilsonProblem::small();
    problem.tol = 3e-5;
    problem.gcr.tol = 3e-5;
    let grid = || ProcessGrid::new(Dims([1, 1, 2, 2]), problem.global).unwrap();

    // 1. Message loss + a corrupted reduction: the ARQ retransmits
    //    absorb the drops bit-identically, and the NaN that reaches the
    //    half-precision attempt's global norm triggers a collective
    //    breakdown — the ladder restarts the solve at single precision.
    let plan = FaultPlan::new(11)
        .with_rule(FaultRule::drop_message().on_rank(0).data_only().times(3))
        .with_rule(FaultRule::corrupt_payload().on_rank(1).for_class(MsgClass::Reduce).times(1));
    let t = Instant::now();
    let outcomes = run_wilson_gcr_dd_resilient(
        &problem,
        grid(),
        PrecisionRung::Half,
        CommConfig::resilient(),
        Some(plan),
    );
    report("drop + corrupt: recovered via the precision ladder", &outcomes, t.elapsed());
    assert!(outcomes.iter().all(|r| r.as_ref().is_ok_and(|o| o.stats.converged)));

    // 2. The same solve with a rank dying mid-run: the dead rank is
    //    reported in its own slot, every peer unwinds with a structured
    //    error within the deadline — nobody hangs.
    let plan = FaultPlan::new(31).with_rule(FaultRule::die_rank().on_rank(2).after(6).times(1));
    let t = Instant::now();
    let outcomes = run_wilson_gcr_dd_resilient(
        &problem,
        grid(),
        PrecisionRung::Double,
        CommConfig::resilient().with_timeout(Duration::from_secs(2)),
        Some(plan),
    );
    report("rank death: structured unwind, no hang", &outcomes, t.elapsed());
    assert!(outcomes.iter().all(|r| r.is_err()), "every rank must surface an error");
}

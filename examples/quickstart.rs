//! Quickstart: solve a Wilson-clover system three ways on a virtual
//! 4-GPU cluster and compare — the 30-second tour of the library.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lqcd::prelude::*;

fn main() -> Result<()> {
    // A small, well-conditioned Wilson-clover problem: 8⁴ lattice,
    // disordered SU(3) gauge field, m = 0.15, c_sw = 1.
    let problem = WilsonProblem::small();
    println!("lattice {}  mass {}  disorder {}", problem.global, problem.mass, problem.disorder);

    // Partition Z and T over a 2×2 process grid: four "GPUs", each a
    // thread exchanging ghost zones through the QMP-like layer.
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), problem.global)?;
    println!(
        "process grid {} ({} ranks, local volume {})",
        grid.shape,
        grid.num_ranks(),
        grid.local
    );

    // 1. The production baseline: even-odd preconditioned BiCGstab.
    let bicg = run_wilson_bicgstab(&problem, grid.clone())?;
    let b0 = &bicg[0];
    println!(
        "\nBiCGstab     : {:4} iterations, {:5} matvecs, |r|/|b| = {:.2e}",
        b0.stats.iterations, b0.matvecs, b0.stats.residual
    );

    // 2. GCR-DD: flexible GCR with the non-overlapping additive-Schwarz
    //    preconditioner (each rank's domain solved with a few MR steps,
    //    communication switched off — paper §8.1).
    let gcr = run_wilson_gcr_dd(&problem, grid.clone(), false)?;
    let g0 = &gcr[0];
    println!(
        "GCR-DD       : {:4} outer iters, {:5} comm matvecs + {:5} block matvecs, |r|/|b| = {:.2e}",
        g0.stats.iterations, g0.matvecs, g0.dirichlet_matvecs, g0.stats.residual
    );

    // 3. The paper's production configuration: single-half-half — GCR
    //    restarted in single precision, Krylov space and block solves in
    //    16-bit fixed point.
    let mut half_problem = problem.clone();
    half_problem.tol = 3e-5; // single-precision accuracy suffices (§8.1)
    half_problem.gcr.tol = 3e-5;
    let half = run_wilson_gcr_dd(&half_problem, grid, true)?;
    let h0 = &half[0];
    println!(
        "GCR-DD (S/H/H): {:4} outer iters, |r|/|b| = {:.2e} (single-precision target)",
        h0.stats.iterations, h0.stats.residual
    );

    // The two full-precision solvers found the same solution.
    let rel = (b0.solution_norm2 - g0.solution_norm2).abs() / b0.solution_norm2;
    println!("\nsolution norms agree to {rel:.2e}");
    assert!(rel < 1e-6);
    Ok(())
}

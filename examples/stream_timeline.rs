//! Render the Fig. 4 stream schedule: one simulated dslash application's
//! task timeline across the kernel stream and the per-dimension
//! communication pipelines.
//!
//! ```sh
//! cargo run --release --example stream_timeline [gpus]
//! ```

use lqcd::perf::cost::{OpConfig, PartitionGeometry};
use lqcd::prelude::*;

fn main() -> Result<()> {
    let gpus: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let model = edge();
    let volume = Dims::symm(32, 256);
    let grid = PartitionScheme::XYZT.grid(volume, gpus)?;
    let geo = PartitionGeometry::of(&grid);
    let cfg = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Single,
        recon: Recon::Twelve,
    };
    let t = simulate_dslash(&model, &geo, &cfg);

    println!(
        "Wilson-clover dslash on {gpus} GPUs of {} ({} grid, local CB volume {})",
        model.name, grid.shape, geo.vol_cb
    );
    println!(
        "total {:.1} µs | interior ends {:.1} µs | GPU idle {:.1} µs | wire {:.0} KB\n",
        t.total * 1e6,
        t.interior_end * 1e6,
        t.gpu_idle * 1e6,
        t.nic_bytes / 1e3
    );

    // Group the timeline by stream, Fig. 4 style.
    let mut streams: Vec<String> = t.timeline.iter().map(|e| e.stream.clone()).collect();
    streams.sort();
    streams.dedup();
    // "kernels" first, then dimension streams.
    streams.sort_by_key(|s| if s == "kernels" { 0 } else { 1 });

    let width = 92usize;
    let scale = width as f64 / t.total;
    for stream in &streams {
        let mut row = vec![b'.'; width];
        for e in t.timeline.iter().filter(|e| &e.stream == stream) {
            let a = (e.start * scale) as usize;
            let b = ((e.end * scale) as usize).min(width - 1).max(a);
            let ch = match e.task.as_str() {
                "interior" => b'I',
                s if s.starts_with("exterior") => b'E',
                s if s.starts_with("gather") => b'g',
                "D2H" => b'd',
                "H2D" => b'u',
                "memcpy" => b'm',
                "MPI" => b'M',
                _ => b'#',
            };
            for c in row.iter_mut().take(b + 1).skip(a) {
                *c = ch;
            }
        }
        println!("{:>12} |{}|", stream, String::from_utf8_lossy(&row));
    }
    println!(
        "\nlegend: g gather · I interior · E exterior · d D2H · m host memcpy · M MPI · u H2D"
    );
    println!("(cf. paper Fig. 4: interior kernel overlapping the staged ghost pipelines,");
    println!(" exterior kernels blocked on their dimension's arrival)");
    Ok(())
}
